//! The on-disk S-view format: sorted runs of `(key, tuple-block)` records
//! with a sparse in-memory fence index, compressed per segment.
//!
//! One file holds one materialized view. Tuples are grouped by their
//! projection onto the view's *link* variables (the key Online Yannakakis
//! probes by), the groups are sorted by key, and each group is written as
//! one record. Since v2 the body is compressed at segment granularity
//! while the header stays plain little-endian `u64`s, so the format still
//! needs no serialization dependency:
//!
//! ```text
//! header:   MAGIC  arity  var[0..arity]  link-varset  records  tuples   (LE u64)
//! segment:  up to FENCE_STRIDE records; fences point at segment starts
//!   record 0:    key[i]  as plain LEB128 varints (absolute = the fence key)
//!                count   as varint
//!                block   non-link columns only, column-major:
//!                        `count` varint values per column
//!   record 1..:  key[i]  as zigzag varint deltas against record 0's key[i]
//!                count + block as above
//! ```
//!
//! Three compression levers stack: within a segment, sorted keys become
//! tiny zigzag deltas against the segment head (which the fence already
//! holds resident); every stored word is LEB128 varint-packed instead of
//! a fixed 8 bytes; and the link columns of a block are not stored at all
//! — every tuple in a record projects to the record's key, so those
//! columns are reconstructed from the key at decode time. Decoding is
//! **strict**: truncated and overlong (non-canonical) varints, a bad
//! version byte, unsorted keys or trailing bytes all surface as `Err`
//! from [`StoredView::open`] — which is also the compaction validator, so
//! a torn rewrite can never replace a valid run.
//!
//! At open time the file is scanned (and fully validated) once and every
//! `FENCE_STRIDE`-th record's `(first key, byte offset)` is retained in
//! memory — the *fence index*, the only resident state. A probe
//! binary-searches the fences for the segment that could hold the key,
//! performs **one contiguous file read** of that segment (at most
//! `FENCE_STRIDE` records, now a few hundred bytes instead of a few KB),
//! and walks the buffer until the key is found or passed. Blocks decode
//! straight into [`ColumnRun`] columns — the stored columns are already
//! column-major on disk and the link columns splat from the key, so no
//! intermediate row or `Tuple` ever exists on the columnar path. Probes
//! take `&self` and are safe from many threads at once (positioned reads
//! on Unix; a seek lock elsewhere), which is what lets a disk-resident
//! view sit behind the same `Sync` serving surface as the in-memory
//! indexes.

use std::cell::RefCell;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use cqap_common::{varint, CqapError, FxHashMap, FxHashSet, Result, Tuple, Val, VarSet};
use cqap_obs::{CounterId, MetricsSink, StageId, TraceStage};
use cqap_relation::{Relation, Schema};
use cqap_yannakakis::ColumnRun;

thread_local! {
    /// Per-worker probe scratch: the segment read buffer plus the decode
    /// vectors (current key, segment-head key, block values, row
    /// assembly). Probes resize them in place, so a warm serving worker
    /// reads and decompresses cold-tier segments without allocating.
    static SEGMENT_SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

#[derive(Default)]
struct Scratch {
    /// Raw segment bytes, straight off the file.
    buf: Vec<u8>,
    /// The current record's decoded key.
    key: Vec<Val>,
    /// The segment head's key (delta base for records 1..).
    head: Vec<Val>,
    /// Decoded block values, column-major (stored columns only).
    block: Vec<Val>,
    /// One row being assembled on the row-probe path.
    row: Vec<Val>,
}

/// `b"CQAPSVW2"` — the format tag checked at open. Version 1 (plain
/// little-endian `u64` records) is no longer readable; its magic is
/// rejected like any other.
const MAGIC: u64 = u64::from_le_bytes(*b"CQAPSVW2");

/// Records per fence segment: a probe reads at most this many records in
/// its one contiguous segment read, and key deltas never reach across a
/// segment boundary.
const FENCE_STRIDE: usize = 16;

fn io_err(path: &Path, action: &str, error: std::io::Error) -> CqapError {
    CqapError::Other(format!(
        "stored view {}: {action}: {error}",
        path.display()
    ))
}

fn corrupt(path: &Path, what: &str) -> CqapError {
    CqapError::Other(format!(
        "stored view {} is corrupt: {what}",
        path.display()
    ))
}

/// A positioned-read handle that can be shared across threads.
struct RandomAccess {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: std::sync::Mutex<File>,
}

impl RandomAccess {
    fn new(file: File) -> Self {
        #[cfg(unix)]
        {
            RandomAccess { file }
        }
        #[cfg(not(unix))]
        {
            RandomAccess {
                file: std::sync::Mutex::new(file),
            }
        }
    }

    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            std::os::unix::fs::FileExt::read_exact_at(&self.file, buf, offset)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut file = self.file.lock().expect("file lock");
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(buf)
        }
    }
}

/// One fence: the key of the segment's first record plus its byte offset.
/// The fence key doubles as the segment's delta base.
struct Fence {
    key: Tuple,
    offset: u64,
}

/// Where a decoded column's values come from: link columns are implied by
/// the record key, the rest are stored on disk.
#[derive(Clone, Copy)]
enum ColSource {
    /// Column equals component `i` of the record's key.
    Key(usize),
    /// Column is stored column `c` of the on-disk block.
    Stored(usize),
}

/// Per-view column layout derived from the schema and link variables:
/// which schema positions form the key (in key order), which are stored
/// in blocks (ascending), and the per-column source map used at decode.
struct ColLayout {
    key_positions: Vec<usize>,
    stored_positions: Vec<usize>,
    sources: Vec<ColSource>,
}

impl ColLayout {
    fn new(schema: &Schema, link: VarSet) -> Result<Self> {
        let key_positions = schema.positions_of_set(link)?;
        let arity = schema.arity();
        let mut sources = vec![ColSource::Stored(0); arity];
        let mut is_key = vec![false; arity];
        for (i, &p) in key_positions.iter().enumerate() {
            sources[p] = ColSource::Key(i);
            is_key[p] = true;
        }
        let mut stored_positions = Vec::with_capacity(arity - key_positions.len());
        for (p, src) in sources.iter_mut().enumerate() {
            if !is_key[p] {
                *src = ColSource::Stored(stored_positions.len());
                stored_positions.push(p);
            }
        }
        Ok(ColLayout {
            key_positions,
            stored_positions,
            sources,
        })
    }

    fn stored_arity(&self) -> usize {
        self.stored_positions.len()
    }
}

/// The in-memory delta overlay of one stored view — the LSM-style delta
/// segment consulted at probe time on top of the immutable base run.
///
/// Inserts land in `added` (grouped by probe key, so a probe extends its
/// base result with one bucket lookup); deletes of base tuples become
/// tombstones in `deleted`, while deletes of overlay tuples cancel in
/// place. The invariants `added ∩ base = ∅` and `deleted ⊆ base` hold
/// because the maintenance layer feeds the overlay *net* view deltas, so
/// `base − deleted + added` is exactly the maintained view content.
#[derive(Default)]
struct Overlay {
    /// Inserted tuples, grouped by their link-key projection.
    added: FxHashMap<Tuple, Vec<Tuple>>,
    /// Total tuples across the `added` buckets.
    added_len: usize,
    /// Base-run tuples deleted since the run was written.
    deleted: FxHashSet<Tuple>,
}

impl Overlay {
    fn is_empty(&self) -> bool {
        self.added_len == 0 && self.deleted.is_empty()
    }

    /// Buffered delta tuples (inserts plus tombstones) — the compaction
    /// trigger's size measure.
    fn len(&self) -> usize {
        self.added_len + self.deleted.len()
    }
}

/// A disk-resident S-view: a compressed sorted run on disk plus the
/// in-memory fence index. Probing never scans the file — a binary search
/// over the fences narrows the key to one segment, which is fetched in a
/// single contiguous read and decoded out of per-thread scratch.
pub struct StoredView {
    path: PathBuf,
    file: RandomAccess,
    schema: Schema,
    link: VarSet,
    layout: ColLayout,
    fences: Vec<Fence>,
    num_tuples: usize,
    num_records: usize,
    file_bytes: u64,
    delete_on_drop: bool,
    overlay: Overlay,
    /// Observability seam: segment reads, on-disk vs decoded bytes,
    /// overlay-pending probes, compaction count and duration. Disabled
    /// (free) unless attached via [`StoredView::set_metrics_sink`].
    sink: MetricsSink,
}

/// Validates the freshly written run at `tmp` (magic, counts, every
/// varint, key order — the full [`StoredView::open`] check) before
/// renaming it over `base`. A torn or truncated temp file is removed and
/// rejected, leaving the base run untouched, so a crash mid-compaction
/// can never replace a valid run with garbage.
fn validate_and_swap(base: &Path, tmp: &Path) -> Result<()> {
    match StoredView::open(tmp) {
        Ok(_) => std::fs::rename(tmp, base).map_err(|e| io_err(base, "swap compacted run", e)),
        Err(error) => {
            let _ = std::fs::remove_file(tmp);
            Err(error)
        }
    }
}

/// Serializes `rel`, grouped and sorted by its projection onto `link`, to
/// a new v2 compressed file at `path` (truncating any existing file).
///
/// # Errors
/// Fails if `link` is not a subset of the relation's variables, or on I/O
/// errors.
pub fn write_view(path: &Path, rel: &Relation, link: VarSet) -> Result<()> {
    let layout = ColLayout::new(rel.schema(), link)?;
    let mut groups: FxHashMap<Tuple, Vec<&Tuple>> = FxHashMap::default();
    for t in rel.iter() {
        groups
            .entry(t.project(&layout.key_positions))
            .or_default()
            .push(t);
    }
    let mut keys: Vec<&Tuple> = groups.keys().collect();
    keys.sort_unstable_by(|a, b| a.as_slice().cmp(b.as_slice()));

    let file = File::create(path).map_err(|e| io_err(path, "create", e))?;
    let mut out = BufWriter::new(file);
    let mut emit = |v: u64| -> Result<()> {
        out.write_all(&v.to_le_bytes())
            .map_err(|e| io_err(path, "write", e))
    };
    emit(MAGIC)?;
    emit(rel.schema().arity() as u64)?;
    for &v in rel.schema().vars() {
        emit(v as u64)?;
    }
    emit(link.0)?;
    emit(keys.len() as u64)?;
    emit(rel.len() as u64)?;

    let mut body: Vec<u8> = Vec::new();
    let mut head: &[Val] = &[];
    for (idx, key) in keys.iter().enumerate() {
        if idx % FENCE_STRIDE == 0 {
            // Segment head: absolute key, the delta base for the rest of
            // the segment (and the fence key the open scan retains).
            head = key.as_slice();
            for &v in head {
                varint::encode_u64(v, &mut body);
            }
        } else {
            for (&base, &v) in head.iter().zip(key.as_slice()) {
                varint::encode_delta(base, v, &mut body);
            }
        }
        let mut block = groups[*key].clone();
        // Deterministic files: blocks are sorted too.
        block.sort_unstable_by(|a, b| a.as_slice().cmp(b.as_slice()));
        varint::encode_u64(block.len() as u64, &mut body);
        // Column-major, non-link columns only: the link columns of every
        // tuple in this record equal the key and are not stored.
        for &p in &layout.stored_positions {
            for t in &block {
                varint::encode_u64(t.get(p), &mut body);
            }
        }
    }
    out.write_all(&body).map_err(|e| io_err(path, "write", e))?;
    out.flush().map_err(|e| io_err(path, "flush", e))?;
    Ok(())
}

/// Strict varint reader over an in-memory segment (or body) buffer.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn rest(&self) -> &'a [u8] {
        self.buf.get(self.pos..).unwrap_or(&[])
    }

    /// Decodes one canonical varint; `None` on truncated or overlong
    /// input.
    fn read_varint(&mut self) -> Option<u64> {
        let (v, used) = varint::decode_u64(self.rest())?;
        self.pos += used;
        Some(v)
    }

    /// Decodes a record key into `out`: absolute varints at a segment
    /// head (`head == None`), zigzag deltas against the head key
    /// otherwise.
    fn read_key(&mut self, key_arity: usize, head: Option<&[Val]>, out: &mut Vec<Val>) -> bool {
        out.clear();
        match head {
            None => {
                for _ in 0..key_arity {
                    match self.read_varint() {
                        Some(v) => out.push(v),
                        None => return false,
                    }
                }
            }
            Some(base) => {
                for &b in &base[..key_arity] {
                    match self.read_varint() {
                        Some(raw) => out.push(b.wrapping_add(varint::unzigzag(raw) as u64)),
                        None => return false,
                    }
                }
            }
        }
        true
    }

    /// Decodes `n` block values into `out` (cleared first) through the
    /// 8-wide fast path of [`varint::decode_block`]; `false` on truncated
    /// or overlong input.
    fn read_block(&mut self, n: usize, out: &mut Vec<Val>) -> bool {
        out.clear();
        match varint::decode_block(self.rest(), n, out) {
            Some(used) => {
                self.pos += used;
                true
            }
            None => false,
        }
    }

    /// Advances past `n` varints without decoding them (the values were
    /// validated at open; only truncation is re-checked).
    fn skip_varints(&mut self, n: usize) -> bool {
        for _ in 0..n {
            loop {
                match self.buf.get(self.pos) {
                    Some(b) => {
                        self.pos += 1;
                        if b & 0x80 == 0 {
                            break;
                        }
                    }
                    None => return false,
                }
            }
        }
        true
    }

    fn at_end(&self) -> bool {
        self.pos >= self.buf.len()
    }
}

fn read_u64_at(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let chunk = bytes.get(*pos..*pos + 8)?;
    *pos += 8;
    Some(u64::from_le_bytes(chunk.try_into().expect("8 bytes")))
}

impl StoredView {
    /// Opens a view file, validating the header and **every record** —
    /// canonical varints, non-empty blocks, strictly ascending keys, the
    /// tuple count, no trailing bytes — while building the fence index in
    /// one sequential scan. Corruption of any kind (including a v1 or
    /// otherwise wrong version tag, truncated or overlong varints) is an
    /// error, never a panic.
    ///
    /// # Errors
    /// Fails on I/O errors or a malformed file.
    pub fn open(path: &Path) -> Result<Self> {
        let bytes = std::fs::read(path).map_err(|e| io_err(path, "open", e))?;
        let file_bytes = bytes.len() as u64;
        let mut at = 0usize;
        let mut next = |what: &str| -> Result<u64> {
            read_u64_at(&bytes, &mut at).ok_or_else(|| corrupt(path, what))
        };

        if next("truncated header")? != MAGIC {
            return Err(corrupt(path, "bad magic or unsupported format version"));
        }
        let arity = next("truncated header")? as usize;
        if arity > 64 {
            return Err(corrupt(path, "implausible arity"));
        }
        let mut vars = Vec::with_capacity(arity);
        for _ in 0..arity {
            vars.push(next("truncated header")? as usize);
        }
        let schema = Schema::new(vars).map_err(|_| corrupt(path, "invalid schema"))?;
        let link = VarSet(next("truncated header")?);
        if !link.is_subset(schema.varset()) {
            return Err(corrupt(path, "link variables outside the schema"));
        }
        let num_records = next("truncated header")? as usize;
        let num_tuples = next("truncated header")? as usize;
        let header_bytes = at;
        let layout =
            ColLayout::new(&schema, link).map_err(|_| corrupt(path, "invalid link layout"))?;
        let key_arity = layout.key_positions.len();
        let stored_arity = layout.stored_arity();

        // Sequential validation scan: decode every key and block value
        // (strict canonical varints), check key order, and remember every
        // FENCE_STRIDE-th record's first key and offset.
        let mut fences = Vec::with_capacity(num_records.div_ceil(FENCE_STRIDE));
        let mut cursor = Cursor::new(&bytes[header_bytes..]);
        let mut head: Vec<Val> = Vec::with_capacity(key_arity);
        let mut key: Vec<Val> = Vec::with_capacity(key_arity);
        let mut prev_key: Vec<Val> = Vec::new();
        let mut block: Vec<Val> = Vec::new();
        let mut seen_tuples = 0usize;
        for record in 0..num_records {
            let offset = header_bytes as u64 + cursor.pos as u64;
            let segment_head = record % FENCE_STRIDE == 0;
            let base = if segment_head { None } else { Some(head.as_slice()) };
            if !cursor.read_key(key_arity, base, &mut key) {
                return Err(corrupt(path, "truncated or overlong varint in key"));
            }
            if segment_head {
                head.clear();
                head.extend_from_slice(&key);
                fences.push(Fence {
                    key: Tuple::from_slice(&key),
                    offset,
                });
            }
            if record > 0 && prev_key.as_slice() >= key.as_slice() {
                return Err(corrupt(path, "keys out of order"));
            }
            prev_key.clear();
            prev_key.extend_from_slice(&key);
            let count = cursor
                .read_varint()
                .ok_or_else(|| corrupt(path, "truncated or overlong varint in count"))?
                as usize;
            if count == 0 {
                return Err(corrupt(path, "empty record block"));
            }
            if count > num_tuples {
                return Err(corrupt(path, "block overruns tuple count"));
            }
            if !cursor.read_block(count * stored_arity, &mut block) {
                return Err(corrupt(path, "truncated or overlong varint in block"));
            }
            seen_tuples += count;
        }
        if seen_tuples != num_tuples {
            return Err(corrupt(path, "tuple count mismatch"));
        }
        if !cursor.at_end() {
            return Err(corrupt(path, "trailing bytes"));
        }

        let file = File::open(path).map_err(|e| io_err(path, "reopen", e))?;
        Ok(StoredView {
            path: path.to_path_buf(),
            file: RandomAccess::new(file),
            schema,
            link,
            layout,
            fences,
            num_tuples,
            num_records,
            file_bytes,
            delete_on_drop: false,
            overlay: Overlay::default(),
            sink: MetricsSink::disabled(),
        })
    }

    /// Attaches a metrics sink: probes then count segment reads, on-disk
    /// (compressed) and decoded (logical) bytes, overlay-pending probes,
    /// and compactions (count and duration).
    pub fn set_metrics_sink(&mut self, sink: MetricsSink) {
        self.sink = sink;
    }

    /// Marks the backing file for deletion when this view is dropped (used
    /// by owners that spilled the file themselves).
    pub fn delete_on_drop(&mut self) {
        self.delete_on_drop = true;
    }

    /// The schema of the stored tuples.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The link (probe-key) variables.
    pub fn link(&self) -> VarSet {
        self.link
    }

    /// Number of stored tuples: the base run net of tombstones, plus the
    /// overlay's inserts — exactly the maintained view size.
    pub fn len(&self) -> usize {
        self.num_tuples - self.overlay.deleted.len() + self.overlay.added_len
    }

    /// Whether the view stores no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct keys in the base run (records).
    pub fn num_keys(&self) -> usize {
        self.num_records
    }

    /// Stored values — the same machine-independent space measure as
    /// [`cqap_relation::Relation::stored_values`], so disk-resident and
    /// in-memory views report comparable `S`. Overlay-aware: a maintained
    /// view reports the same `S` as a fresh rebuild. (The *physical*
    /// compressed footprint is [`StoredView::disk_bytes`].)
    pub fn stored_values(&self) -> usize {
        self.len() * self.schema.arity()
    }

    /// Delta tuples buffered in the overlay (inserts plus tombstones);
    /// zero once [`StoredView::compact`] has folded them into the run.
    pub fn overlay_len(&self) -> usize {
        self.overlay.len()
    }

    /// Size of the backing file in bytes — the *compressed* on-disk
    /// footprint of the run.
    pub fn disk_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// Values held resident in memory: the fence index plus any buffered
    /// overlay tuples (the per-view RAM cost of the cold tier).
    pub fn resident_values(&self) -> usize {
        let fences: usize = self.fences.iter().map(|f| f.key.arity()).sum();
        fences + self.overlay.len() * self.schema.arity()
    }

    /// All stored tuples whose link projection equals `key`, as a fresh
    /// vector — a convenience wrapper over [`StoredView::probe_into`].
    ///
    /// # Errors
    /// Fails on I/O errors or if the segment bytes are malformed.
    pub fn probe(&self, key: &Tuple) -> Result<Vec<Tuple>> {
        let mut out = Vec::new();
        self.probe_into(key, &mut out)?;
        Ok(out)
    }

    /// The shared segment walk behind the probe entry points: fence
    /// search, one contiguous segment read into this worker thread's
    /// reused buffer, then a forward walk of the sorted records (decoding
    /// each delta key against the segment head) that stops as soon as the
    /// run passes `key`. `on_match(cursor, count, key_vals, scratch)`
    /// runs at most once, positioned at the matching record's block;
    /// `Ok(None)` means no record matched. Counts one segment read, its
    /// on-disk (compressed) bytes, and the logical bytes the walked
    /// records decode to.
    fn find_record<R>(
        &self,
        key: &Tuple,
        on_match: impl FnOnce(&mut Cursor<'_>, usize, &[Val], &mut Scratch) -> Result<R>,
    ) -> Result<Option<R>> {
        if key.arity() != self.link.len() {
            return Ok(None);
        }
        // Last fence whose first key is <= the target; if even the first
        // fence is greater, the key precedes every record.
        let idx = self
            .fences
            .partition_point(|f| f.key.as_slice() <= key.as_slice());
        if idx == 0 {
            return Ok(None);
        }
        let start = self.fences[idx - 1].offset;
        let end = self
            .fences
            .get(idx)
            .map_or(self.file_bytes, |f| f.offset);
        self.sink.incr(CounterId::SegmentReads);
        self.sink.add(CounterId::SegmentBytesRead, end - start);
        // Leaf trace event for the physical read: armed only when the
        // current thread serves a sampled trace, so unsampled probes skip
        // even the clock reads.
        let read_mark = self.sink.trace_mark();
        let key_arity = self.link.len();
        let arity = self.schema.arity();
        let stored_arity = self.layout.stored_arity();
        SEGMENT_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            // The buffer and key vectors move out of the scratch for the
            // duration of the walk so the closure can still receive the
            // remaining scratch (block/row) mutably; they move back in
            // before returning, so their capacity is kept either way.
            let mut buf = std::mem::take(&mut scratch.buf);
            let mut kv = std::mem::take(&mut scratch.key);
            let mut head = std::mem::take(&mut scratch.head);

            let len = (end - start) as usize;
            buf.resize(len, 0);
            let mut result: Result<Option<R>> = self
                .file
                .read_exact_at(&mut buf[..len], start)
                .map_err(|e| io_err(&self.path, "segment read", e))
                .map(|()| None);
            if result.is_ok() {
                self.sink
                    .trace_leaf(read_mark, TraceStage::SegmentRead, end - start);
                let mut cursor = Cursor::new(&buf[..len]);
                // Logical (uncompressed-equivalent) bytes represented by
                // the records this walk visits: the decoded half of the
                // compression-ratio pair.
                let mut logical = 0u64;
                let mut first = true;
                while !cursor.at_end() {
                    let base = if first { None } else { Some(head.as_slice()) };
                    if !cursor.read_key(key_arity, base, &mut kv) {
                        result = Err(corrupt(&self.path, "truncated key"));
                        break;
                    }
                    if first {
                        head.clear();
                        head.extend_from_slice(&kv);
                        first = false;
                    }
                    let count = match cursor.read_varint() {
                        Some(c) => c as usize,
                        None => {
                            result = Err(corrupt(&self.path, "truncated count"));
                            break;
                        }
                    };
                    if count == 0 || count > self.num_tuples {
                        result = Err(corrupt(&self.path, "block overruns segment"));
                        break;
                    }
                    match kv.as_slice().cmp(key.as_slice()) {
                        std::cmp::Ordering::Less => {
                            logical += ((key_arity + 1 + count * arity) * 8) as u64;
                            if !cursor.skip_varints(count * stored_arity) {
                                result = Err(corrupt(&self.path, "truncated block"));
                                break;
                            }
                        }
                        std::cmp::Ordering::Equal => {
                            logical += ((key_arity + 1 + count * arity) * 8) as u64;
                            result = on_match(&mut cursor, count, &kv, scratch).map(Some);
                            break;
                        }
                        std::cmp::Ordering::Greater => {
                            logical += ((key_arity + 1) * 8) as u64;
                            break;
                        }
                    }
                }
                self.sink.add(CounterId::SegmentBytesDecoded, logical);
            }
            scratch.buf = buf;
            scratch.key = kv;
            scratch.head = head;
            result
        })
    }

    /// Appends all stored tuples whose link projection equals `key` to
    /// `out`, merging the base run with the delta overlay: base tuples are
    /// filtered through the tombstone set (a no-op while it is empty) and
    /// the overlay's insert bucket for the key is appended after. A warm
    /// worker with a clean overlay performs the whole probe without
    /// allocating (beyond the output tuples it appends): the segment lands
    /// in the thread's reused buffer, the block decompresses into reused
    /// scratch, and link columns rebuild from the key.
    ///
    /// # Errors
    /// Fails on I/O errors or if the segment bytes are malformed.
    pub fn probe_into(&self, key: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        let overlay_mark = if self.overlay.is_empty() {
            None
        } else {
            self.sink.incr(CounterId::OverlayPendingProbes);
            self.sink.trace_mark()
        };
        let path = &self.path;
        let deleted = &self.overlay.deleted;
        let layout = &self.layout;
        let stored_arity = layout.stored_arity();
        self.find_record(key, |cursor, count, key_vals, scratch| {
            if !cursor.read_block(count * stored_arity, &mut scratch.block) {
                return Err(corrupt(path, "truncated tuple"));
            }
            out.reserve(count);
            for r in 0..count {
                scratch.row.clear();
                for src in &layout.sources {
                    scratch.row.push(match *src {
                        ColSource::Key(i) => key_vals[i],
                        ColSource::Stored(c) => scratch.block[c * count + r],
                    });
                }
                let t = Tuple::from_slice(&scratch.row);
                if deleted.is_empty() || !deleted.contains(&t) {
                    out.push(t);
                }
            }
            Ok(())
        })?;
        if let Some(bucket) = self.overlay.added.get(key) {
            out.extend(bucket.iter().cloned());
        }
        self.sink
            .trace_leaf(overlay_mark, TraceStage::OverlayProbe, self.overlay.len() as u64);
        Ok(())
    }

    /// Appends all stored tuples whose link projection equals `key` to the
    /// columns of `out` (which must be reset to the view's arity). The
    /// matching record's block is decoded **column-directly**: stored
    /// columns are already column-major on disk, so each decompresses
    /// (8-wide varint fast path) into scratch and bulk-copies into its
    /// output column, while link columns splat from the key — no `Tuple`
    /// boxing, no row assembly. This is how the cold tier feeds the
    /// columnar execution path.
    ///
    /// # Errors
    /// Fails on I/O errors or if the segment bytes are malformed.
    pub fn probe_columns(&self, key: &Tuple, out: &mut ColumnRun) -> Result<()> {
        debug_assert_eq!(out.width(), self.schema.arity());
        let path = &self.path;
        let layout = &self.layout;
        let stored_arity = layout.stored_arity();
        if self.overlay.is_empty() {
            return self
                .find_record(key, |cursor, count, key_vals, scratch| {
                    // Decode (and validate) the whole block first so a
                    // malformed segment can never leave `out` with
                    // half-appended, uneven columns.
                    if !cursor.read_block(count * stored_arity, &mut scratch.block) {
                        return Err(corrupt(path, "truncated tuple"));
                    }
                    let block = &scratch.block;
                    out.append_columns(count, |j, col| match layout.sources[j] {
                        ColSource::Key(i) => {
                            col.extend(std::iter::repeat(key_vals[i]).take(count));
                        }
                        ColSource::Stored(c) => {
                            col.extend_from_slice(&block[c * count..(c + 1) * count]);
                        }
                    });
                    Ok(())
                })
                .map(|_| ());
        }
        // Overlay pending: merge through the row path, then transpose. The
        // column-direct decode resumes once compaction folds the overlay
        // back into a single sorted run.
        let mut rows = Vec::new();
        self.probe_into(key, &mut rows)?;
        out.append_columns(rows.len(), |j, col| {
            col.reserve(rows.len());
            for t in &rows {
                col.push(t.get(j));
            }
        });
        Ok(())
    }

    /// Whether any stored tuple matches `key` on the link variables — the
    /// key walk of [`StoredView::probe_into`] without decoding any tuple
    /// block (a semijoin probe needs only existence), unless tombstones
    /// are pending, in which case the matching block is decoded to check
    /// that some tuple survives them.
    ///
    /// # Errors
    /// Fails on I/O errors or if the segment bytes are malformed.
    pub fn contains_key(&self, key: &Tuple) -> Result<bool> {
        let overlay_mark = if self.overlay.is_empty() {
            None
        } else {
            self.sink.incr(CounterId::OverlayPendingProbes);
            self.sink.trace_mark()
        };
        let found = if self.overlay.added.get(key).is_some_and(|b| !b.is_empty()) {
            true
        } else if self.overlay.deleted.is_empty() {
            self.find_record(key, |_, _, _, _| Ok(()))?.is_some()
        } else {
            let path = &self.path;
            let layout = &self.layout;
            let stored_arity = layout.stored_arity();
            let deleted = &self.overlay.deleted;
            self.find_record(key, |cursor, count, key_vals, scratch| {
                if !cursor.read_block(count * stored_arity, &mut scratch.block) {
                    return Err(corrupt(path, "truncated tuple"));
                }
                for r in 0..count {
                    scratch.row.clear();
                    for src in &layout.sources {
                        scratch.row.push(match *src {
                            ColSource::Key(i) => key_vals[i],
                            ColSource::Stored(c) => scratch.block[c * count + r],
                        });
                    }
                    if !deleted.contains(&Tuple::from_slice(&scratch.row)) {
                        return Ok(true);
                    }
                }
                Ok(false)
            })?
            .unwrap_or(false)
        };
        self.sink
            .trace_leaf(overlay_mark, TraceStage::OverlayProbe, self.overlay.len() as u64);
        Ok(found)
    }

    /// Absorbs one net ΔS-view into the delta overlay: `deletes` cancel
    /// against buffered inserts or become tombstones over the base run,
    /// `inserts` revoke tombstones or join the overlay's key buckets.
    /// Compacts automatically once the overlay outgrows a quarter of the
    /// base run (`overlay × 4 > base + 64` — the slack keeps tiny views
    /// from rewriting their file on every batch).
    ///
    /// The caller (the maintenance layer) guarantees net semantics:
    /// inserted tuples are absent from the view, deleted tuples present.
    ///
    /// # Errors
    /// Fails on I/O errors from a triggered compaction.
    pub fn apply_delta(&mut self, inserts: &[Tuple], deletes: &[Tuple]) -> Result<()> {
        for t in deletes {
            let key = t.project(&self.layout.key_positions);
            let cancelled = match self.overlay.added.get_mut(&key) {
                Some(bucket) => match bucket.iter().position(|b| b == t) {
                    Some(at) => {
                        bucket.swap_remove(at);
                        self.overlay.added_len -= 1;
                        if bucket.is_empty() {
                            self.overlay.added.remove(&key);
                        }
                        true
                    }
                    None => false,
                },
                None => false,
            };
            if !cancelled {
                self.overlay.deleted.insert(t.clone());
            }
        }
        for t in inserts {
            if self.overlay.deleted.remove(t) {
                continue;
            }
            let key = t.project(&self.layout.key_positions);
            self.overlay.added.entry(key).or_default().push(t.clone());
            self.overlay.added_len += 1;
        }
        if self.overlay.len() * 4 > self.num_tuples + 64 {
            self.compact()?;
        }
        Ok(())
    }

    /// Folds the overlay into a fresh sorted run: the merged content is
    /// written to a temp file next to the base run, fully re-validated by
    /// opening it, and only then renamed over the base — a torn write can
    /// never replace a valid run. A clean overlay is a no-op.
    ///
    /// # Errors
    /// Fails on I/O errors; the base run stays valid and the overlay is
    /// retained, so the view remains fully probe-able after a failure.
    pub fn compact(&mut self) -> Result<()> {
        if self.overlay.is_empty() {
            return Ok(());
        }
        // Background trace event (recorded even without a request trace),
        // so the tail report can flag requests whose window a compaction
        // overlapped. Payload: the overlay size being folded in.
        let pending = self.overlay.len() as u64;
        let compact_mark = self.sink.trace_mark_background();
        let timer = self.sink.start();
        let merged = self.merged_relation()?;
        let tmp = self.path.with_extension("tmp");
        write_view(&tmp, &merged, self.link)?;
        validate_and_swap(&self.path, &tmp)?;
        let delete_on_drop = self.delete_on_drop;
        // The stale handle must not delete the just-swapped file when it
        // drops in the assignment below — and, like the drop flag, the
        // attached sink must survive the swap.
        self.delete_on_drop = false;
        let mut fresh = StoredView::open(&self.path)?;
        fresh.delete_on_drop = delete_on_drop;
        fresh.sink = self.sink.clone();
        *self = fresh;
        self.sink.incr(CounterId::Compactions);
        self.sink.stop(timer, StageId::Compaction);
        self.sink
            .trace_leaf(compact_mark, TraceStage::Compaction, pending);
        Ok(())
    }

    /// The maintained view content as an in-memory relation: one
    /// sequential walk of the base run, minus tombstones, plus the
    /// overlay's inserts.
    fn merged_relation(&self) -> Result<Relation> {
        let bytes = std::fs::read(&self.path)
            .map_err(|e| io_err(&self.path, "read for compaction", e))?;
        let header = (5 + self.schema.arity()) * 8;
        let body = bytes
            .get(header..)
            .ok_or_else(|| corrupt(&self.path, "truncated header"))?;
        let layout = &self.layout;
        let key_arity = layout.key_positions.len();
        let stored_arity = layout.stored_arity();
        let mut cursor = Cursor::new(body);
        let mut head: Vec<Val> = Vec::new();
        let mut key: Vec<Val> = Vec::new();
        let mut block: Vec<Val> = Vec::new();
        let mut row: Vec<Val> = Vec::with_capacity(self.schema.arity());
        let mut tuples = Vec::with_capacity(self.len());
        for record in 0..self.num_records {
            let segment_head = record % FENCE_STRIDE == 0;
            let base = if segment_head { None } else { Some(head.as_slice()) };
            if !cursor.read_key(key_arity, base, &mut key) {
                return Err(corrupt(&self.path, "truncated key"));
            }
            if segment_head {
                head.clear();
                head.extend_from_slice(&key);
            }
            let count = cursor
                .read_varint()
                .ok_or_else(|| corrupt(&self.path, "truncated count"))?
                as usize;
            if !cursor.read_block(count * stored_arity, &mut block) {
                return Err(corrupt(&self.path, "truncated tuple"));
            }
            for r in 0..count {
                row.clear();
                for src in &layout.sources {
                    row.push(match *src {
                        ColSource::Key(i) => key[i],
                        ColSource::Stored(c) => block[c * count + r],
                    });
                }
                let t = Tuple::from_slice(&row);
                if !self.overlay.deleted.contains(&t) {
                    tuples.push(t);
                }
            }
        }
        for bucket in self.overlay.added.values() {
            tuples.extend(bucket.iter().cloned());
        }
        Relation::from_tuples("compacted", self.schema.clone(), tuples)
    }
}

impl Drop for StoredView {
    fn drop(&mut self) {
        if self.delete_on_drop {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_common::vars;

    fn scratch(name: &str) -> PathBuf {
        let dir = crate::scratch_dir("format-test");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir.join(name)
    }

    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
        if let Some(dir) = path.parent() {
            let _ = std::fs::remove_dir(dir);
        }
    }

    #[test]
    fn roundtrip_probe_matches_hash_index() {
        let rel = Relation::binary(
            "R",
            0,
            1,
            (0..500u64).map(|i| (i % 37, i * 7 % 101)),
        );
        let link = vars![1];
        let path = scratch("roundtrip.sview");
        write_view(&path, &rel, link).unwrap();
        let view = StoredView::open(&path).unwrap();
        assert_eq!(view.len(), rel.len());
        assert_eq!(view.stored_values(), rel.stored_values());
        assert_eq!(view.schema(), rel.schema());
        assert!(view.resident_values() <= view.num_keys());

        let index = cqap_relation::HashIndex::build(&rel, link).unwrap();
        for key in 0..45u64 {
            let key = Tuple::unary(key);
            let mut expected: Vec<Tuple> = index.probe(&key).to_vec();
            expected.sort_unstable_by(|a, b| a.as_slice().cmp(b.as_slice()));
            assert_eq!(view.probe(&key).unwrap(), expected, "key {key:?}");
        }
        // Wrong-arity keys behave like missing keys, as in HashIndex.
        assert!(view.probe(&Tuple::pair(1, 2)).unwrap().is_empty());
        cleanup(&path);
    }

    #[test]
    fn compression_shrinks_the_file() {
        // 2000 tuples of two u64 columns = 32 KB logical (plus keys and
        // counts); small sorted values must compress far below that.
        let rel = Relation::binary("R", 0, 1, (0..2_000u64).map(|i| (i % 251, i)));
        let path = scratch("compressed.sview");
        write_view(&path, &rel, vars![1]).unwrap();
        let view = StoredView::open(&path).unwrap();
        let logical = (view.stored_values() * 8) as u64;
        assert!(
            view.disk_bytes() * 4 <= logical,
            "disk {} vs logical {} — expected >= 4x compression",
            view.disk_bytes(),
            logical
        );
        cleanup(&path);
    }

    #[test]
    fn extreme_values_round_trip() {
        // u64::MAX keys and values, zero, and every varint length class.
        let pairs: Vec<(u64, u64)> = vec![
            (0, 0),
            (0, u64::MAX),
            (1, 1 << 62),
            (0x7f, 0x80),
            (0x3fff, 0x4000),
            (u64::MAX - 1, 0),
            (u64::MAX, u64::MAX),
        ];
        let rel = Relation::binary("R", 0, 1, pairs.iter().copied());
        let path = scratch("extremes.sview");
        write_view(&path, &rel, vars![1]).unwrap();
        let view = StoredView::open(&path).unwrap();
        for &(k, v) in &pairs {
            let got = view.probe(&Tuple::unary(k)).unwrap();
            assert!(got.contains(&Tuple::pair(k, v)), "key {k} value {v}");
        }
        cleanup(&path);
    }

    #[test]
    fn empty_relation_and_empty_link() {
        let empty = Relation::new("E", Schema::of([0, 1]));
        let path = scratch("empty.sview");
        write_view(&path, &empty, vars![1]).unwrap();
        let view = StoredView::open(&path).unwrap();
        assert!(view.is_empty());
        assert!(view.probe(&Tuple::unary(3)).unwrap().is_empty());
        cleanup(&path);

        // Empty link: the whole view is one record under the empty key.
        let rel = Relation::binary("R", 0, 1, [(1, 2), (3, 4), (1, 5)]);
        let path = scratch("nolink.sview");
        write_view(&path, &rel, VarSet::EMPTY).unwrap();
        let view = StoredView::open(&path).unwrap();
        assert_eq!(view.num_keys(), 1);
        let all = view.probe(&Tuple::empty()).unwrap();
        assert_eq!(all.len(), 3);
        cleanup(&path);
    }

    #[test]
    fn full_link_stores_no_block_columns() {
        // Link covers both columns: records are key-only (count 1, empty
        // blocks) and tuples rebuild entirely from their keys.
        let rel = Relation::binary("R", 0, 1, (0..100u64).map(|i| (i, i + 7)));
        let path = scratch("fulllink.sview");
        write_view(&path, &rel, vars![1, 2]).unwrap();
        let view = StoredView::open(&path).unwrap();
        assert_eq!(view.num_keys(), 100);
        for i in 0..100u64 {
            let got = view.probe(&Tuple::pair(i, i + 7)).unwrap();
            assert_eq!(got, vec![Tuple::pair(i, i + 7)]);
        }
        cleanup(&path);
    }

    #[test]
    fn many_keys_cross_fence_segments() {
        // 400 distinct keys at stride 16 => 25 fences; probe every key plus
        // misses on both sides and between keys.
        let rel = Relation::binary("R", 0, 1, (0..400u64).map(|i| (3 * i + 1, i)));
        let path = scratch("fences.sview");
        write_view(&path, &rel, vars![1]).unwrap();
        let view = StoredView::open(&path).unwrap();
        assert_eq!(view.num_keys(), 400);
        assert!(view.resident_values() >= 25);
        for i in 0..400u64 {
            let hit = view.probe(&Tuple::unary(3 * i + 1)).unwrap();
            assert_eq!(hit, vec![Tuple::pair(3 * i + 1, i)]);
            assert!(view.probe(&Tuple::unary(3 * i)).unwrap().is_empty());
            // The decode-free semijoin check agrees with the full probe.
            assert!(view.contains_key(&Tuple::unary(3 * i + 1)).unwrap());
            assert!(!view.contains_key(&Tuple::unary(3 * i)).unwrap());
        }
        assert!(view.probe(&Tuple::unary(0)).unwrap().is_empty());
        assert!(view.probe(&Tuple::unary(9_999)).unwrap().is_empty());
        assert!(!view.contains_key(&Tuple::unary(0)).unwrap());
        assert!(!view.contains_key(&Tuple::unary(9_999)).unwrap());
        assert!(!view.contains_key(&Tuple::pair(1, 2)).unwrap(), "wrong arity");
        cleanup(&path);
    }

    #[test]
    fn corrupt_files_are_rejected() {
        let rel = Relation::binary("R", 0, 1, [(1, 2), (3, 4)]);
        let path = scratch("corrupt.sview");
        write_view(&path, &rel, vars![1]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(StoredView::open(&path).is_err(), "bad magic");

        // A v1-tagged file is an unsupported version, not a panic.
        let mut v1 = std::fs::read(&path).unwrap();
        v1[..8].copy_from_slice(b"CQAPSVW1");
        std::fs::write(&path, &v1).unwrap();
        assert!(StoredView::open(&path).is_err(), "v1 version byte");

        write_view(&path, &rel, vars![1]).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
        assert!(StoredView::open(&path).is_err(), "truncated file");
        cleanup(&path);
    }

    #[test]
    fn truncated_and_overlong_varints_are_rejected() {
        let rel = Relation::binary("R", 0, 1, (0..50u64).map(|i| (2 * i, i + 3)));
        let path = scratch("varint-corrupt.sview");
        write_view(&path, &rel, vars![1]).unwrap();
        let good = std::fs::read(&path).unwrap();
        let header = (5 + 2) * 8;

        // Overlong: the first body byte is the first key (0 => 0x00);
        // re-encode it as the two-byte overlong form 0x80 0x00.
        let mut overlong = good.clone();
        assert_eq!(overlong[header], 0x00);
        overlong[header] = 0x80;
        overlong.insert(header + 1, 0x00);
        std::fs::write(&path, &overlong).unwrap();
        let err = match StoredView::open(&path) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("overlong varint accepted"),
        };
        assert!(err.contains("overlong") || err.contains("corrupt"), "{err}");

        // Truncated varint: a dangling continuation byte at the end.
        let mut torn = good.clone();
        torn.push(0x80);
        std::fs::write(&path, &torn).unwrap();
        assert!(StoredView::open(&path).is_err(), "dangling continuation");

        // Unsorted keys: swap the first two records' key bytes (keys 0
        // and 2 are single-byte varints at fixed offsets: the head key
        // is absolute, the second is a zigzag delta; rewriting the head
        // to a larger value makes the sequence non-ascending).
        let mut unsorted = good.clone();
        assert_eq!(unsorted[header], 0x00);
        unsorted[header] = 0x63; // head key 99, still > next key 0 + delta
        std::fs::write(&path, &unsorted).unwrap();
        assert!(StoredView::open(&path).is_err(), "keys out of order");

        std::fs::write(&path, &good).unwrap();
        assert!(StoredView::open(&path).is_ok(), "pristine file reopens");
        cleanup(&path);
    }

    #[test]
    fn overlay_probes_merge_base_tombstones_and_inserts() {
        // Keyed on the first column (`vars![1]` is variable x0): seven
        // base keys with ~9 tuples each.
        let rel = Relation::binary("R", 0, 1, (0..60u64).map(|i| (i % 7, i)));
        let link = vars![1];
        let path = scratch("overlay.sview");
        write_view(&path, &rel, link).unwrap();
        let mut view = StoredView::open(&path).unwrap();
        view.delete_on_drop();

        // Delete two base tuples, insert two fresh ones (keys 3 and 9 —
        // 9 is a brand-new key), and exercise tombstone revocation.
        view.apply_delta(&[], &[Tuple::pair(0, 0), Tuple::pair(3, 3)]).unwrap();
        view.apply_delta(&[Tuple::pair(3, 100), Tuple::pair(9, 101)], &[]).unwrap();
        // Re-insert a tombstoned tuple: the tombstone is revoked, not doubled.
        view.apply_delta(&[Tuple::pair(0, 0)], &[]).unwrap();
        // Delete an overlay insert: cancels in place.
        view.apply_delta(&[Tuple::pair(9, 102)], &[]).unwrap();
        view.apply_delta(&[], &[Tuple::pair(9, 102)]).unwrap();

        assert_eq!(view.len(), 60 - 1 + 2);
        assert_eq!(view.stored_values(), view.len() * 2);
        let probe = |v: &StoredView, k: u64| {
            let mut out = v.probe(&Tuple::unary(k)).unwrap();
            out.sort_unstable_by(|a, b| a.as_slice().cmp(b.as_slice()));
            out
        };
        // Key 3 lost (3,3), gained (3,100); key 9 holds only the insert
        // that was not cancelled; key 0 got its tombstone revoked.
        assert!(!probe(&view, 3).contains(&Tuple::pair(3, 3)));
        assert!(probe(&view, 3).contains(&Tuple::pair(3, 100)));
        assert_eq!(probe(&view, 9), vec![Tuple::pair(9, 101)]);
        assert!(probe(&view, 0).contains(&Tuple::pair(0, 0)));
        assert!(view.contains_key(&Tuple::unary(9)).unwrap());

        // The columnar fallback agrees with the row path while dirty.
        let mut cols = ColumnRun::new();
        cols.reset(2);
        view.probe_columns(&Tuple::unary(3), &mut cols).unwrap();
        assert_eq!(cols.rows(), probe(&view, 3).len());

        // Compaction folds the overlay into the run without changing
        // content, and the column-direct fast path takes over again.
        let expected: Vec<Vec<Tuple>> = (0..10).map(|k| probe(&view, k)).collect();
        view.compact().unwrap();
        assert_eq!(view.overlay_len(), 0);
        assert_eq!(view.len(), 61);
        for (k, want) in expected.iter().enumerate() {
            assert_eq!(&probe(&view, k as u64), want, "key {k}");
        }
        drop(view);
        assert!(!path.exists(), "delete_on_drop survives compaction");
        cleanup(&path);
    }

    #[test]
    fn tombstoning_every_tuple_of_a_key_empties_it() {
        let rel = Relation::binary("R", 0, 1, [(5, 1), (5, 2), (6, 3)]);
        let path = scratch("tombstone-all.sview");
        write_view(&path, &rel, vars![1]).unwrap();
        let mut view = StoredView::open(&path).unwrap();
        view.apply_delta(&[], &[Tuple::pair(5, 1), Tuple::pair(5, 2)]).unwrap();
        assert!(view.probe(&Tuple::unary(5)).unwrap().is_empty());
        assert!(!view.contains_key(&Tuple::unary(5)).unwrap());
        assert!(view.contains_key(&Tuple::unary(6)).unwrap());
        cleanup(&path);
    }

    #[test]
    fn torn_compaction_temp_is_rejected_and_base_survives() {
        let rel = Relation::binary("R", 0, 1, (0..40u64).map(|i| (i, i + 1)));
        let path = scratch("swap.sview");
        write_view(&path, &rel, vars![1]).unwrap();
        let base_bytes = std::fs::read(&path).unwrap();

        // A truncated temp run (torn write): rejected, removed, base intact.
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &base_bytes[..base_bytes.len() - 3]).unwrap();
        assert!(validate_and_swap(&path, &tmp).is_err());
        assert!(!tmp.exists(), "torn temp file is cleaned up");
        assert_eq!(std::fs::read(&path).unwrap(), base_bytes, "base untouched");

        // A corrupted header (bad magic): same rejection path.
        let mut garbled = base_bytes.clone();
        garbled[0] ^= 0xff;
        std::fs::write(&tmp, &garbled).unwrap();
        assert!(validate_and_swap(&path, &tmp).is_err());
        assert!(!tmp.exists());
        assert_eq!(std::fs::read(&path).unwrap(), base_bytes);

        // An overlong varint in the temp run's body: same rejection path.
        let mut overlong = base_bytes.clone();
        let header = (5 + 2) * 8;
        overlong[header] = 0x80;
        overlong.insert(header + 1, 0x00);
        std::fs::write(&tmp, &overlong).unwrap();
        assert!(validate_and_swap(&path, &tmp).is_err());
        assert!(!tmp.exists());
        assert_eq!(std::fs::read(&path).unwrap(), base_bytes);

        // A valid temp run swaps in.
        let bigger = Relation::binary("R", 0, 1, (0..41u64).map(|i| (i, i + 1)));
        write_view(&tmp, &bigger, vars![1]).unwrap();
        validate_and_swap(&path, &tmp).unwrap();
        assert_eq!(StoredView::open(&path).unwrap().len(), 41);
        cleanup(&path);
    }

    #[test]
    fn compaction_write_failure_keeps_base_and_overlay_serving() {
        let rel = Relation::binary("R", 0, 1, (0..30u64).map(|i| (i, i + 1)));
        let path = scratch("writefail.sview");
        write_view(&path, &rel, vars![1]).unwrap();
        let base_bytes = std::fs::read(&path).unwrap();
        let mut view = StoredView::open(&path).unwrap();
        view.apply_delta(&[Tuple::pair(700, 500)], &[Tuple::pair(3, 4)]).unwrap();
        assert!(view.overlay_len() > 0, "delta buffered in the overlay");

        // Fault injection on the write side: a directory squatting on the
        // temp path makes `write_view`'s `File::create` fail (EISDIR)
        // before a single byte of the new run exists.
        let tmp = path.with_extension("tmp");
        std::fs::create_dir(&tmp).unwrap();
        let err = view.compact().unwrap_err();
        assert!(err.to_string().contains("writefail"), "I/O error names the file: {err}");

        // The failed compaction changed nothing durable and lost nothing
        // volatile: base bytes are untouched, the overlay is retained, and
        // probes still see base minus tombstones plus inserts.
        assert_eq!(std::fs::read(&path).unwrap(), base_bytes, "base untouched");
        assert!(view.overlay_len() > 0, "overlay retained after failure");
        assert_eq!(view.probe(&Tuple::unary(700)).unwrap(), vec![Tuple::pair(700, 500)]);
        assert!(view.probe(&Tuple::unary(3)).unwrap().is_empty(), "tombstone holds");
        assert_eq!(view.probe(&Tuple::unary(10)).unwrap(), vec![Tuple::pair(10, 11)]);

        // Once the fault clears, the same view compacts successfully and
        // the merged run serves identically with an empty overlay.
        std::fs::remove_dir(&tmp).unwrap();
        view.compact().unwrap();
        assert_eq!(view.overlay_len(), 0);
        assert_eq!(view.len(), 30, "30 base - 1 tombstone + 1 insert");
        assert_eq!(view.probe(&Tuple::unary(700)).unwrap(), vec![Tuple::pair(700, 500)]);
        assert!(view.probe(&Tuple::unary(3)).unwrap().is_empty());
        cleanup(&path);
    }

    #[test]
    fn oversized_overlay_triggers_automatic_compaction() {
        let rel = Relation::binary("R", 0, 1, [(1, 2)]);
        let path = scratch("autocompact.sview");
        write_view(&path, &rel, vars![1]).unwrap();
        let mut view = StoredView::open(&path).unwrap();
        view.delete_on_drop();
        // 64-tuple slack: small deltas stay buffered…
        let small: Vec<Tuple> = (0..10u64).map(|i| Tuple::pair(100 + i, i)).collect();
        view.apply_delta(&small, &[]).unwrap();
        assert_eq!(view.overlay_len(), 10);
        // …but crossing `overlay × 4 > base + 64` rewrites the run.
        let big: Vec<Tuple> = (0..40u64).map(|i| Tuple::pair(200 + i, i)).collect();
        view.apply_delta(&big, &[]).unwrap();
        assert_eq!(view.overlay_len(), 0, "compaction triggered");
        assert_eq!(view.len(), 51);
        cleanup(&path);
    }

    #[test]
    fn delete_on_drop_removes_the_file() {
        let rel = Relation::binary("R", 0, 1, [(1, 2)]);
        let path = scratch("dropped.sview");
        write_view(&path, &rel, vars![1]).unwrap();
        {
            let mut view = StoredView::open(&path).unwrap();
            view.delete_on_drop();
        }
        assert!(!path.exists());
        cleanup(&path);
    }
}
