//! The on-disk S-view format: sorted runs of `(key, tuple-block)` records
//! with a sparse in-memory fence index.
//!
//! One file holds one materialized view. Tuples are grouped by their
//! projection onto the view's *link* variables (the key Online Yannakakis
//! probes by), the groups are sorted by key, and each group is written as
//! one record: the key values, the block length, then the block of full
//! tuples. Every value is a little-endian `u64`, so the format needs no
//! serialization dependency.
//!
//! ```text
//! header:  MAGIC  arity  var[0..arity]  link-varset  records  tuples
//! record:  key[0..key_arity]  count  tuple[0] .. tuple[count-1]
//! ```
//!
//! At open time the file is scanned once and every `FENCE_STRIDE`-th
//! record's `(first key, byte offset)` is retained in memory — the *fence
//! index*, the only resident state. A probe binary-searches the fences for
//! the segment that could hold the key, performs **one contiguous file
//! read** of that segment (at most `FENCE_STRIDE` records), and walks the
//! buffer until the key is found or passed. Probes take `&self` and are
//! safe from many threads at once (positioned reads on Unix; a seek lock
//! elsewhere), which is what lets a disk-resident view sit behind the same
//! `Sync` serving surface as the in-memory indexes.

use std::cell::RefCell;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use cqap_common::{CqapError, FxHashMap, FxHashSet, Result, Tuple, Val, VarSet};
use cqap_obs::{CounterId, MetricsSink, StageId, TraceStage};
use cqap_relation::{Relation, Schema};
use cqap_yannakakis::ColumnRun;

thread_local! {
    /// One segment read buffer per worker thread: probes resize it to the
    /// segment length and decode out of it, so a warm serving worker reads
    /// cold-tier segments without allocating. (Values scratch shares the
    /// cell so a probe borrows both with one TLS access.)
    static SEGMENT_SCRATCH: RefCell<(Vec<u8>, Vec<Val>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// `b"CQAPSVW1"` — the format tag checked at open.
const MAGIC: u64 = u64::from_le_bytes(*b"CQAPSVW1");

/// Records per fence segment: a probe reads at most this many records in
/// its one contiguous segment read.
const FENCE_STRIDE: usize = 16;

fn io_err(path: &Path, action: &str, error: std::io::Error) -> CqapError {
    CqapError::Other(format!(
        "stored view {}: {action}: {error}",
        path.display()
    ))
}

fn corrupt(path: &Path, what: &str) -> CqapError {
    CqapError::Other(format!(
        "stored view {} is corrupt: {what}",
        path.display()
    ))
}

/// A positioned-read handle that can be shared across threads.
struct RandomAccess {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: std::sync::Mutex<File>,
}

impl RandomAccess {
    fn new(file: File) -> Self {
        #[cfg(unix)]
        {
            RandomAccess { file }
        }
        #[cfg(not(unix))]
        {
            RandomAccess {
                file: std::sync::Mutex::new(file),
            }
        }
    }

    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            std::os::unix::fs::FileExt::read_exact_at(&self.file, buf, offset)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Seek, SeekFrom};
            let mut file = self.file.lock().expect("file lock");
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(buf)
        }
    }
}

/// One fence: the key of the segment's first record plus its byte offset.
struct Fence {
    key: Tuple,
    offset: u64,
}

/// The in-memory delta overlay of one stored view — the LSM-style delta
/// segment consulted at probe time on top of the immutable base run.
///
/// Inserts land in `added` (grouped by probe key, so a probe extends its
/// base result with one bucket lookup); deletes of base tuples become
/// tombstones in `deleted`, while deletes of overlay tuples cancel in
/// place. The invariants `added ∩ base = ∅` and `deleted ⊆ base` hold
/// because the maintenance layer feeds the overlay *net* view deltas, so
/// `base − deleted + added` is exactly the maintained view content.
#[derive(Default)]
struct Overlay {
    /// Inserted tuples, grouped by their link-key projection.
    added: FxHashMap<Tuple, Vec<Tuple>>,
    /// Total tuples across the `added` buckets.
    added_len: usize,
    /// Base-run tuples deleted since the run was written.
    deleted: FxHashSet<Tuple>,
}

impl Overlay {
    fn is_empty(&self) -> bool {
        self.added_len == 0 && self.deleted.is_empty()
    }

    /// Buffered delta tuples (inserts plus tombstones) — the compaction
    /// trigger's size measure.
    fn len(&self) -> usize {
        self.added_len + self.deleted.len()
    }
}

/// A disk-resident S-view: a sorted run on disk plus the in-memory fence
/// index. Probing never scans the file — a binary search over the fences
/// narrows the key to one segment, which is fetched in a single contiguous
/// read.
pub struct StoredView {
    path: PathBuf,
    file: RandomAccess,
    schema: Schema,
    link: VarSet,
    fences: Vec<Fence>,
    num_tuples: usize,
    num_records: usize,
    file_bytes: u64,
    delete_on_drop: bool,
    overlay: Overlay,
    /// Observability seam: segment reads/bytes, overlay-pending probes,
    /// compaction count and duration. Disabled (free) unless attached via
    /// [`StoredView::set_metrics_sink`].
    sink: MetricsSink,
}

/// Validates the freshly written run at `tmp` (magic, counts, offsets —
/// the full [`StoredView::open`] check) before renaming it over `base`.
/// A torn or truncated temp file is removed and rejected, leaving the
/// base run untouched, so a crash mid-compaction can never replace a
/// valid run with garbage.
fn validate_and_swap(base: &Path, tmp: &Path) -> Result<()> {
    match StoredView::open(tmp) {
        Ok(_) => std::fs::rename(tmp, base).map_err(|e| io_err(base, "swap compacted run", e)),
        Err(error) => {
            let _ = std::fs::remove_file(tmp);
            Err(error)
        }
    }
}

/// Serializes `rel`, grouped and sorted by its projection onto `link`, to
/// a new file at `path` (truncating any existing file).
///
/// # Errors
/// Fails if `link` is not a subset of the relation's variables, or on I/O
/// errors.
pub fn write_view(path: &Path, rel: &Relation, link: VarSet) -> Result<()> {
    let key_positions = rel.schema().positions_of_set(link)?;
    let mut groups: FxHashMap<Tuple, Vec<&Tuple>> = FxHashMap::default();
    for t in rel.iter() {
        groups.entry(t.project(&key_positions)).or_default().push(t);
    }
    let mut keys: Vec<&Tuple> = groups.keys().collect();
    keys.sort_unstable_by(|a, b| a.as_slice().cmp(b.as_slice()));

    let file = File::create(path).map_err(|e| io_err(path, "create", e))?;
    let mut out = BufWriter::new(file);
    let mut emit = |v: u64| -> Result<()> {
        out.write_all(&v.to_le_bytes())
            .map_err(|e| io_err(path, "write", e))
    };
    emit(MAGIC)?;
    emit(rel.schema().arity() as u64)?;
    for &v in rel.schema().vars() {
        emit(v as u64)?;
    }
    emit(link.0)?;
    emit(keys.len() as u64)?;
    emit(rel.len() as u64)?;
    for key in keys {
        let mut block = groups[key].clone();
        // Deterministic files: blocks are sorted too.
        block.sort_unstable_by(|a, b| a.as_slice().cmp(b.as_slice()));
        for &v in key.as_slice() {
            emit(v)?;
        }
        emit(block.len() as u64)?;
        for t in block {
            for &v in t.as_slice() {
                emit(v)?;
            }
        }
    }
    out.flush().map_err(|e| io_err(path, "flush", e))?;
    Ok(())
}

/// Little-endian `u64` reader over an in-memory segment buffer.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining_vals(&self) -> usize {
        (self.buf.len() - self.pos) / 8
    }

    fn next(&mut self) -> Option<u64> {
        let bytes = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Reads `n` values into the caller's scratch vector (cleared first);
    /// `false` on a truncated buffer.
    fn read_vals(&mut self, n: usize, out: &mut Vec<Val>) -> bool {
        out.clear();
        for _ in 0..n {
            match self.next() {
                Some(v) => out.push(v),
                None => return false,
            }
        }
        true
    }

    /// Decodes a row-major block of `count × width` little-endian values
    /// straight into the columns of `out`, advancing past the block;
    /// `false` on a truncated buffer. The column-direct path of the cold
    /// tier: each output column is filled by one strided walk over the
    /// segment bytes, and no intermediate row (or `Tuple`) ever exists.
    fn read_columns(&mut self, count: usize, width: usize, out: &mut ColumnRun) -> bool {
        let bytes = count * width * 8;
        if self.pos + bytes > self.buf.len() {
            return false;
        }
        let buf = self.buf;
        let base = self.pos;
        out.append_columns(count, |j, col| {
            col.reserve(count);
            let mut p = base + j * 8;
            for _ in 0..count {
                col.push(u64::from_le_bytes(
                    buf[p..p + 8].try_into().expect("8 bytes"),
                ));
                p += width * 8;
            }
        });
        self.pos += bytes;
        true
    }

    fn skip_vals(&mut self, n: usize) -> bool {
        let bytes = n * 8;
        if self.pos + bytes > self.buf.len() {
            return false;
        }
        self.pos += bytes;
        true
    }

    fn at_end(&self) -> bool {
        self.pos >= self.buf.len()
    }
}

impl StoredView {
    /// Opens a view file, validating the header and building the fence
    /// index with one sequential scan.
    ///
    /// # Errors
    /// Fails on I/O errors or a malformed file.
    pub fn open(path: &Path) -> Result<Self> {
        let file = File::open(path).map_err(|e| io_err(path, "open", e))?;
        let file_bytes = file
            .metadata()
            .map_err(|e| io_err(path, "stat", e))?
            .len();
        let mut reader = BufReader::new(file);
        let next = |reader: &mut BufReader<File>| -> Result<u64> {
            let mut bytes = [0u8; 8];
            reader
                .read_exact(&mut bytes)
                .map_err(|e| io_err(path, "read header/record", e))?;
            Ok(u64::from_le_bytes(bytes))
        };

        if next(&mut reader)? != MAGIC {
            return Err(corrupt(path, "bad magic"));
        }
        let arity = next(&mut reader)? as usize;
        if arity > 64 {
            return Err(corrupt(path, "implausible arity"));
        }
        let mut vars = Vec::with_capacity(arity);
        for _ in 0..arity {
            vars.push(next(&mut reader)? as usize);
        }
        let schema = Schema::new(vars).map_err(|_| corrupt(path, "invalid schema"))?;
        let link = VarSet(next(&mut reader)?);
        if !link.is_subset(schema.varset()) {
            return Err(corrupt(path, "link variables outside the schema"));
        }
        let num_records = next(&mut reader)? as usize;
        let num_tuples = next(&mut reader)? as usize;
        let key_arity = link.len();

        // Sequential fence-building scan: remember every FENCE_STRIDE-th
        // record's first key and offset, skip the blocks.
        let mut fences = Vec::with_capacity(num_records.div_ceil(FENCE_STRIDE));
        // Header words: magic, arity, the `arity` schema vars, link,
        // record count, tuple count.
        let mut offset = (5 + arity) as u64 * 8;
        let mut seen_tuples = 0usize;
        for record in 0..num_records {
            let mut key = Vec::with_capacity(key_arity);
            for _ in 0..key_arity {
                key.push(next(&mut reader)?);
            }
            let count = next(&mut reader)? as usize;
            if count == 0 {
                return Err(corrupt(path, "empty record block"));
            }
            if record % FENCE_STRIDE == 0 {
                fences.push(Fence {
                    key: Tuple::from_slice(&key),
                    offset,
                });
            }
            let block_bytes = (count * arity) as u64 * 8;
            std::io::copy(
                &mut reader.by_ref().take(block_bytes),
                &mut std::io::sink(),
            )
            .map_err(|e| io_err(path, "scan", e))
            .and_then(|skipped| {
                if skipped == block_bytes {
                    Ok(())
                } else {
                    Err(corrupt(path, "truncated record block"))
                }
            })?;
            offset += (key_arity + 1 + count * arity) as u64 * 8;
            seen_tuples += count;
        }
        if seen_tuples != num_tuples {
            return Err(corrupt(path, "tuple count mismatch"));
        }
        if offset != file_bytes {
            return Err(corrupt(path, "trailing bytes"));
        }

        let file = File::open(path).map_err(|e| io_err(path, "reopen", e))?;
        Ok(StoredView {
            path: path.to_path_buf(),
            file: RandomAccess::new(file),
            schema,
            link,
            fences,
            num_tuples,
            num_records,
            file_bytes,
            delete_on_drop: false,
            overlay: Overlay::default(),
            sink: MetricsSink::disabled(),
        })
    }

    /// Attaches a metrics sink: probes then count segment reads and bytes
    /// read, overlay-pending probes, and compactions (count and duration).
    pub fn set_metrics_sink(&mut self, sink: MetricsSink) {
        self.sink = sink;
    }

    /// Marks the backing file for deletion when this view is dropped (used
    /// by owners that spilled the file themselves).
    pub fn delete_on_drop(&mut self) {
        self.delete_on_drop = true;
    }

    /// The schema of the stored tuples.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The link (probe-key) variables.
    pub fn link(&self) -> VarSet {
        self.link
    }

    /// Number of stored tuples: the base run net of tombstones, plus the
    /// overlay's inserts — exactly the maintained view size.
    pub fn len(&self) -> usize {
        self.num_tuples - self.overlay.deleted.len() + self.overlay.added_len
    }

    /// Whether the view stores no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct keys in the base run (records).
    pub fn num_keys(&self) -> usize {
        self.num_records
    }

    /// Stored values — the same machine-independent space measure as
    /// [`cqap_relation::Relation::stored_values`], so disk-resident and
    /// in-memory views report comparable `S`. Overlay-aware: a maintained
    /// view reports the same `S` as a fresh rebuild.
    pub fn stored_values(&self) -> usize {
        self.len() * self.schema.arity()
    }

    /// Delta tuples buffered in the overlay (inserts plus tombstones);
    /// zero once [`StoredView::compact`] has folded them into the run.
    pub fn overlay_len(&self) -> usize {
        self.overlay.len()
    }

    /// Size of the backing file in bytes.
    pub fn disk_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// Values held resident in memory: the fence index plus any buffered
    /// overlay tuples (the per-view RAM cost of the cold tier).
    pub fn resident_values(&self) -> usize {
        let fences: usize = self.fences.iter().map(|f| f.key.arity()).sum();
        fences + self.overlay.len() * self.schema.arity()
    }

    /// All stored tuples whose link projection equals `key`, as a fresh
    /// vector — a convenience wrapper over [`StoredView::probe_into`].
    ///
    /// # Errors
    /// Fails on I/O errors or if the segment bytes are malformed.
    pub fn probe(&self, key: &Tuple) -> Result<Vec<Tuple>> {
        let mut out = Vec::new();
        self.probe_into(key, &mut out)?;
        Ok(out)
    }

    /// The shared segment walk behind [`StoredView::probe_into`] and
    /// [`StoredView::contains_key`]: fence search, one contiguous segment
    /// read into this worker thread's reused buffer, then a forward walk
    /// of the sorted records (with block-bounds validation) that stops as
    /// soon as the run passes `key`. `on_match(cursor, count, vals)` runs
    /// at most once, positioned at the matching record's tuple block;
    /// `Ok(None)` means no record matched.
    fn find_record<R>(
        &self,
        key: &Tuple,
        on_match: impl FnOnce(&mut Cursor<'_>, usize, &mut Vec<Val>) -> Result<R>,
    ) -> Result<Option<R>> {
        if key.arity() != self.link.len() {
            return Ok(None);
        }
        // Last fence whose first key is <= the target; if even the first
        // fence is greater, the key precedes every record.
        let idx = self
            .fences
            .partition_point(|f| f.key.as_slice() <= key.as_slice());
        if idx == 0 {
            return Ok(None);
        }
        let start = self.fences[idx - 1].offset;
        let end = self
            .fences
            .get(idx)
            .map_or(self.file_bytes, |f| f.offset);
        self.sink.incr(CounterId::SegmentReads);
        self.sink.add(CounterId::SegmentBytesRead, end - start);
        // Leaf trace event for the physical read: armed only when the
        // current thread serves a sampled trace, so unsampled probes skip
        // even the clock reads.
        let read_mark = self.sink.trace_mark();
        SEGMENT_SCRATCH.with(|cell| {
            let (buf, vals) = &mut *cell.borrow_mut();
            let len = (end - start) as usize;
            buf.resize(len, 0);
            self.file
                .read_exact_at(&mut buf[..len], start)
                .map_err(|e| io_err(&self.path, "segment read", e))?;
            self.sink
                .trace_leaf(read_mark, TraceStage::SegmentRead, end - start);

            let key_arity = self.link.len();
            let arity = self.schema.arity();
            let mut cursor = Cursor::new(&buf[..len]);
            while !cursor.at_end() {
                if !cursor.read_vals(key_arity, vals) {
                    return Err(corrupt(&self.path, "truncated key"));
                }
                let count = cursor
                    .next()
                    .ok_or_else(|| corrupt(&self.path, "truncated count"))?
                    as usize;
                let block_vals = count
                    .checked_mul(arity)
                    .filter(|&b| b <= cursor.remaining_vals())
                    .ok_or_else(|| corrupt(&self.path, "block overruns segment"))?;
                match vals.as_slice().cmp(key.as_slice()) {
                    std::cmp::Ordering::Less => {
                        if !cursor.skip_vals(block_vals) {
                            return Err(corrupt(&self.path, "truncated block"));
                        }
                    }
                    std::cmp::Ordering::Equal => {
                        return on_match(&mut cursor, count, vals).map(Some)
                    }
                    std::cmp::Ordering::Greater => break,
                }
            }
            Ok(None)
        })
    }

    /// Appends all stored tuples whose link projection equals `key` to
    /// `out`, merging the base run with the delta overlay: base tuples are
    /// filtered through the tombstone set (a no-op while it is empty) and
    /// the overlay's insert bucket for the key is appended after. A warm
    /// worker with a clean overlay performs the whole probe without
    /// allocating (beyond the output tuples it appends): the segment lands
    /// in the thread's reused buffer and tuples decode through a reused
    /// values scratch.
    ///
    /// # Errors
    /// Fails on I/O errors or if the segment bytes are malformed.
    pub fn probe_into(&self, key: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        let overlay_mark = if self.overlay.is_empty() {
            None
        } else {
            self.sink.incr(CounterId::OverlayPendingProbes);
            self.sink.trace_mark()
        };
        let arity = self.schema.arity();
        let path = &self.path;
        let deleted = &self.overlay.deleted;
        self.find_record(key, |cursor, count, vals| {
            out.reserve(count);
            for _ in 0..count {
                if !cursor.read_vals(arity, vals) {
                    return Err(corrupt(path, "truncated tuple"));
                }
                let t = Tuple::from_slice(vals);
                if deleted.is_empty() || !deleted.contains(&t) {
                    out.push(t);
                }
            }
            Ok(())
        })?;
        if let Some(bucket) = self.overlay.added.get(key) {
            out.extend(bucket.iter().cloned());
        }
        self.sink
            .trace_leaf(overlay_mark, TraceStage::OverlayProbe, self.overlay.len() as u64);
        Ok(())
    }

    /// Appends all stored tuples whose link projection equals `key` to the
    /// columns of `out` (which must be reset to the view's arity). The
    /// matching record's block is decoded **column-directly** out of the
    /// segment buffer — one strided walk per column, no `Tuple` boxing, no
    /// values scratch — which is how the cold tier feeds the columnar
    /// execution path.
    ///
    /// # Errors
    /// Fails on I/O errors or if the segment bytes are malformed.
    pub fn probe_columns(&self, key: &Tuple, out: &mut ColumnRun) -> Result<()> {
        debug_assert_eq!(out.width(), self.schema.arity());
        let arity = self.schema.arity();
        let path = &self.path;
        if self.overlay.is_empty() {
            return self
                .find_record(key, |cursor, count, _vals| {
                    if !cursor.read_columns(count, arity, out) {
                        return Err(corrupt(path, "truncated tuple"));
                    }
                    Ok(())
                })
                .map(|_| ());
        }
        // Overlay pending: merge through the row path, then transpose. The
        // column-direct decode resumes once compaction folds the overlay
        // back into a single sorted run.
        let mut rows = Vec::new();
        self.probe_into(key, &mut rows)?;
        out.append_columns(rows.len(), |j, col| {
            col.reserve(rows.len());
            for t in &rows {
                col.push(t.get(j));
            }
        });
        Ok(())
    }

    /// Whether any stored tuple matches `key` on the link variables — the
    /// key walk of [`StoredView::probe_into`] without decoding any tuple
    /// block (a semijoin probe needs only existence), unless tombstones
    /// are pending, in which case the matching block is decoded to check
    /// that some tuple survives them.
    ///
    /// # Errors
    /// Fails on I/O errors or if the segment bytes are malformed.
    pub fn contains_key(&self, key: &Tuple) -> Result<bool> {
        let overlay_mark = if self.overlay.is_empty() {
            None
        } else {
            self.sink.incr(CounterId::OverlayPendingProbes);
            self.sink.trace_mark()
        };
        let found = if self.overlay.added.get(key).is_some_and(|b| !b.is_empty()) {
            true
        } else if self.overlay.deleted.is_empty() {
            self.find_record(key, |_, _, _| Ok(()))?.is_some()
        } else {
            let arity = self.schema.arity();
            let path = &self.path;
            let deleted = &self.overlay.deleted;
            self.find_record(key, |cursor, count, vals| {
                for _ in 0..count {
                    if !cursor.read_vals(arity, vals) {
                        return Err(corrupt(path, "truncated tuple"));
                    }
                    if !deleted.contains(&Tuple::from_slice(vals)) {
                        return Ok(true);
                    }
                }
                Ok(false)
            })?
            .unwrap_or(false)
        };
        self.sink
            .trace_leaf(overlay_mark, TraceStage::OverlayProbe, self.overlay.len() as u64);
        Ok(found)
    }

    /// Absorbs one net ΔS-view into the delta overlay: `deletes` cancel
    /// against buffered inserts or become tombstones over the base run,
    /// `inserts` revoke tombstones or join the overlay's key buckets.
    /// Compacts automatically once the overlay outgrows a quarter of the
    /// base run (`overlay × 4 > base + 64` — the slack keeps tiny views
    /// from rewriting their file on every batch).
    ///
    /// The caller (the maintenance layer) guarantees net semantics:
    /// inserted tuples are absent from the view, deleted tuples present.
    ///
    /// # Errors
    /// Fails on I/O errors from a triggered compaction.
    pub fn apply_delta(&mut self, inserts: &[Tuple], deletes: &[Tuple]) -> Result<()> {
        let key_positions = self.schema.positions_of_set(self.link)?;
        for t in deletes {
            let key = t.project(&key_positions);
            let cancelled = match self.overlay.added.get_mut(&key) {
                Some(bucket) => match bucket.iter().position(|b| b == t) {
                    Some(at) => {
                        bucket.swap_remove(at);
                        self.overlay.added_len -= 1;
                        if bucket.is_empty() {
                            self.overlay.added.remove(&key);
                        }
                        true
                    }
                    None => false,
                },
                None => false,
            };
            if !cancelled {
                self.overlay.deleted.insert(t.clone());
            }
        }
        for t in inserts {
            if self.overlay.deleted.remove(t) {
                continue;
            }
            let key = t.project(&key_positions);
            self.overlay.added.entry(key).or_default().push(t.clone());
            self.overlay.added_len += 1;
        }
        if self.overlay.len() * 4 > self.num_tuples + 64 {
            self.compact()?;
        }
        Ok(())
    }

    /// Folds the overlay into a fresh sorted run: the merged content is
    /// written to a temp file next to the base run, fully re-validated by
    /// opening it, and only then renamed over the base — a torn write can
    /// never replace a valid run. A clean overlay is a no-op.
    ///
    /// # Errors
    /// Fails on I/O errors; the base run stays valid and the overlay is
    /// retained, so the view remains fully probe-able after a failure.
    pub fn compact(&mut self) -> Result<()> {
        if self.overlay.is_empty() {
            return Ok(());
        }
        // Background trace event (recorded even without a request trace),
        // so the tail report can flag requests whose window a compaction
        // overlapped. Payload: the overlay size being folded in.
        let pending = self.overlay.len() as u64;
        let compact_mark = self.sink.trace_mark_background();
        let timer = self.sink.start();
        let merged = self.merged_relation()?;
        let tmp = self.path.with_extension("tmp");
        write_view(&tmp, &merged, self.link)?;
        validate_and_swap(&self.path, &tmp)?;
        let delete_on_drop = self.delete_on_drop;
        // The stale handle must not delete the just-swapped file when it
        // drops in the assignment below — and, like the drop flag, the
        // attached sink must survive the swap.
        self.delete_on_drop = false;
        let mut fresh = StoredView::open(&self.path)?;
        fresh.delete_on_drop = delete_on_drop;
        fresh.sink = self.sink.clone();
        *self = fresh;
        self.sink.incr(CounterId::Compactions);
        self.sink.stop(timer, StageId::Compaction);
        self.sink
            .trace_leaf(compact_mark, TraceStage::Compaction, pending);
        Ok(())
    }

    /// The maintained view content as an in-memory relation: one
    /// sequential walk of the base run, minus tombstones, plus the
    /// overlay's inserts.
    fn merged_relation(&self) -> Result<Relation> {
        let bytes = std::fs::read(&self.path)
            .map_err(|e| io_err(&self.path, "read for compaction", e))?;
        let header = (5 + self.schema.arity()) * 8;
        let body = bytes
            .get(header..)
            .ok_or_else(|| corrupt(&self.path, "truncated header"))?;
        let arity = self.schema.arity();
        let key_arity = self.link.len();
        let mut cursor = Cursor::new(body);
        let mut vals = Vec::new();
        let mut tuples = Vec::with_capacity(self.len());
        for _ in 0..self.num_records {
            if !cursor.skip_vals(key_arity) {
                return Err(corrupt(&self.path, "truncated key"));
            }
            let count = cursor
                .next()
                .ok_or_else(|| corrupt(&self.path, "truncated count"))?
                as usize;
            for _ in 0..count {
                if !cursor.read_vals(arity, &mut vals) {
                    return Err(corrupt(&self.path, "truncated tuple"));
                }
                let t = Tuple::from_slice(&vals);
                if !self.overlay.deleted.contains(&t) {
                    tuples.push(t);
                }
            }
        }
        for bucket in self.overlay.added.values() {
            tuples.extend(bucket.iter().cloned());
        }
        Relation::from_tuples("compacted", self.schema.clone(), tuples)
    }
}

impl Drop for StoredView {
    fn drop(&mut self) {
        if self.delete_on_drop {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_common::vars;

    fn scratch(name: &str) -> PathBuf {
        let dir = crate::scratch_dir("format-test");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir.join(name)
    }

    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
        if let Some(dir) = path.parent() {
            let _ = std::fs::remove_dir(dir);
        }
    }

    #[test]
    fn roundtrip_probe_matches_hash_index() {
        let rel = Relation::binary(
            "R",
            0,
            1,
            (0..500u64).map(|i| (i % 37, i * 7 % 101)),
        );
        let link = vars![1];
        let path = scratch("roundtrip.sview");
        write_view(&path, &rel, link).unwrap();
        let view = StoredView::open(&path).unwrap();
        assert_eq!(view.len(), rel.len());
        assert_eq!(view.stored_values(), rel.stored_values());
        assert_eq!(view.schema(), rel.schema());
        assert!(view.resident_values() <= view.num_keys());

        let index = cqap_relation::HashIndex::build(&rel, link).unwrap();
        for key in 0..45u64 {
            let key = Tuple::unary(key);
            let mut expected: Vec<Tuple> = index.probe(&key).to_vec();
            expected.sort_unstable_by(|a, b| a.as_slice().cmp(b.as_slice()));
            assert_eq!(view.probe(&key).unwrap(), expected, "key {key:?}");
        }
        // Wrong-arity keys behave like missing keys, as in HashIndex.
        assert!(view.probe(&Tuple::pair(1, 2)).unwrap().is_empty());
        cleanup(&path);
    }

    #[test]
    fn empty_relation_and_empty_link() {
        let empty = Relation::new("E", Schema::of([0, 1]));
        let path = scratch("empty.sview");
        write_view(&path, &empty, vars![1]).unwrap();
        let view = StoredView::open(&path).unwrap();
        assert!(view.is_empty());
        assert!(view.probe(&Tuple::unary(3)).unwrap().is_empty());
        cleanup(&path);

        // Empty link: the whole view is one record under the empty key.
        let rel = Relation::binary("R", 0, 1, [(1, 2), (3, 4), (1, 5)]);
        let path = scratch("nolink.sview");
        write_view(&path, &rel, VarSet::EMPTY).unwrap();
        let view = StoredView::open(&path).unwrap();
        assert_eq!(view.num_keys(), 1);
        let all = view.probe(&Tuple::empty()).unwrap();
        assert_eq!(all.len(), 3);
        cleanup(&path);
    }

    #[test]
    fn many_keys_cross_fence_segments() {
        // 400 distinct keys at stride 16 => 25 fences; probe every key plus
        // misses on both sides and between keys.
        let rel = Relation::binary("R", 0, 1, (0..400u64).map(|i| (3 * i + 1, i)));
        let path = scratch("fences.sview");
        write_view(&path, &rel, vars![1]).unwrap();
        let view = StoredView::open(&path).unwrap();
        assert_eq!(view.num_keys(), 400);
        assert!(view.resident_values() >= 25);
        for i in 0..400u64 {
            let hit = view.probe(&Tuple::unary(3 * i + 1)).unwrap();
            assert_eq!(hit, vec![Tuple::pair(3 * i + 1, i)]);
            assert!(view.probe(&Tuple::unary(3 * i)).unwrap().is_empty());
            // The decode-free semijoin check agrees with the full probe.
            assert!(view.contains_key(&Tuple::unary(3 * i + 1)).unwrap());
            assert!(!view.contains_key(&Tuple::unary(3 * i)).unwrap());
        }
        assert!(view.probe(&Tuple::unary(0)).unwrap().is_empty());
        assert!(view.probe(&Tuple::unary(9_999)).unwrap().is_empty());
        assert!(!view.contains_key(&Tuple::unary(0)).unwrap());
        assert!(!view.contains_key(&Tuple::unary(9_999)).unwrap());
        assert!(!view.contains_key(&Tuple::pair(1, 2)).unwrap(), "wrong arity");
        cleanup(&path);
    }

    #[test]
    fn corrupt_files_are_rejected() {
        let rel = Relation::binary("R", 0, 1, [(1, 2), (3, 4)]);
        let path = scratch("corrupt.sview");
        write_view(&path, &rel, vars![1]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(StoredView::open(&path).is_err(), "bad magic");

        write_view(&path, &rel, vars![1]).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 8]).unwrap();
        assert!(StoredView::open(&path).is_err(), "truncated file");
        cleanup(&path);
    }

    #[test]
    fn overlay_probes_merge_base_tombstones_and_inserts() {
        // Keyed on the first column (`vars![1]` is variable x0): seven
        // base keys with ~9 tuples each.
        let rel = Relation::binary("R", 0, 1, (0..60u64).map(|i| (i % 7, i)));
        let link = vars![1];
        let path = scratch("overlay.sview");
        write_view(&path, &rel, link).unwrap();
        let mut view = StoredView::open(&path).unwrap();
        view.delete_on_drop();

        // Delete two base tuples, insert two fresh ones (keys 3 and 9 —
        // 9 is a brand-new key), and exercise tombstone revocation.
        view.apply_delta(&[], &[Tuple::pair(0, 0), Tuple::pair(3, 3)]).unwrap();
        view.apply_delta(&[Tuple::pair(3, 100), Tuple::pair(9, 101)], &[]).unwrap();
        // Re-insert a tombstoned tuple: the tombstone is revoked, not doubled.
        view.apply_delta(&[Tuple::pair(0, 0)], &[]).unwrap();
        // Delete an overlay insert: cancels in place.
        view.apply_delta(&[Tuple::pair(9, 102)], &[]).unwrap();
        view.apply_delta(&[], &[Tuple::pair(9, 102)]).unwrap();

        assert_eq!(view.len(), 60 - 1 + 2);
        assert_eq!(view.stored_values(), view.len() * 2);
        let probe = |v: &StoredView, k: u64| {
            let mut out = v.probe(&Tuple::unary(k)).unwrap();
            out.sort_unstable_by(|a, b| a.as_slice().cmp(b.as_slice()));
            out
        };
        // Key 3 lost (3,3), gained (3,100); key 9 holds only the insert
        // that was not cancelled; key 0 got its tombstone revoked.
        assert!(!probe(&view, 3).contains(&Tuple::pair(3, 3)));
        assert!(probe(&view, 3).contains(&Tuple::pair(3, 100)));
        assert_eq!(probe(&view, 9), vec![Tuple::pair(9, 101)]);
        assert!(probe(&view, 0).contains(&Tuple::pair(0, 0)));
        assert!(view.contains_key(&Tuple::unary(9)).unwrap());

        // The columnar fallback agrees with the row path while dirty.
        let mut cols = ColumnRun::new();
        cols.reset(2);
        view.probe_columns(&Tuple::unary(3), &mut cols).unwrap();
        assert_eq!(cols.rows(), probe(&view, 3).len());

        // Compaction folds the overlay into the run without changing
        // content, and the column-direct fast path takes over again.
        let expected: Vec<Vec<Tuple>> = (0..10).map(|k| probe(&view, k)).collect();
        view.compact().unwrap();
        assert_eq!(view.overlay_len(), 0);
        assert_eq!(view.len(), 61);
        for (k, want) in expected.iter().enumerate() {
            assert_eq!(&probe(&view, k as u64), want, "key {k}");
        }
        drop(view);
        assert!(!path.exists(), "delete_on_drop survives compaction");
        cleanup(&path);
    }

    #[test]
    fn tombstoning_every_tuple_of_a_key_empties_it() {
        let rel = Relation::binary("R", 0, 1, [(5, 1), (5, 2), (6, 3)]);
        let path = scratch("tombstone-all.sview");
        write_view(&path, &rel, vars![1]).unwrap();
        let mut view = StoredView::open(&path).unwrap();
        view.apply_delta(&[], &[Tuple::pair(5, 1), Tuple::pair(5, 2)]).unwrap();
        assert!(view.probe(&Tuple::unary(5)).unwrap().is_empty());
        assert!(!view.contains_key(&Tuple::unary(5)).unwrap());
        assert!(view.contains_key(&Tuple::unary(6)).unwrap());
        cleanup(&path);
    }

    #[test]
    fn torn_compaction_temp_is_rejected_and_base_survives() {
        let rel = Relation::binary("R", 0, 1, (0..40u64).map(|i| (i, i + 1)));
        let path = scratch("swap.sview");
        write_view(&path, &rel, vars![1]).unwrap();
        let base_bytes = std::fs::read(&path).unwrap();

        // A truncated temp run (torn write): rejected, removed, base intact.
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &base_bytes[..base_bytes.len() - 8]).unwrap();
        assert!(validate_and_swap(&path, &tmp).is_err());
        assert!(!tmp.exists(), "torn temp file is cleaned up");
        assert_eq!(std::fs::read(&path).unwrap(), base_bytes, "base untouched");

        // A corrupted header (bad magic): same rejection path.
        let mut garbled = base_bytes.clone();
        garbled[0] ^= 0xff;
        std::fs::write(&tmp, &garbled).unwrap();
        assert!(validate_and_swap(&path, &tmp).is_err());
        assert!(!tmp.exists());
        assert_eq!(std::fs::read(&path).unwrap(), base_bytes);

        // A valid temp run swaps in.
        let bigger = Relation::binary("R", 0, 1, (0..41u64).map(|i| (i, i + 1)));
        write_view(&tmp, &bigger, vars![1]).unwrap();
        validate_and_swap(&path, &tmp).unwrap();
        assert_eq!(StoredView::open(&path).unwrap().len(), 41);
        cleanup(&path);
    }

    #[test]
    fn oversized_overlay_triggers_automatic_compaction() {
        let rel = Relation::binary("R", 0, 1, [(1, 2)]);
        let path = scratch("autocompact.sview");
        write_view(&path, &rel, vars![1]).unwrap();
        let mut view = StoredView::open(&path).unwrap();
        view.delete_on_drop();
        // 64-tuple slack: small deltas stay buffered…
        let small: Vec<Tuple> = (0..10u64).map(|i| Tuple::pair(100 + i, i)).collect();
        view.apply_delta(&small, &[]).unwrap();
        assert_eq!(view.overlay_len(), 10);
        // …but crossing `overlay × 4 > base + 64` rewrites the run.
        let big: Vec<Tuple> = (0..40u64).map(|i| Tuple::pair(200 + i, i)).collect();
        view.apply_delta(&big, &[]).unwrap();
        assert_eq!(view.overlay_len(), 0, "compaction triggered");
        assert_eq!(view.len(), 51);
        cleanup(&path);
    }

    #[test]
    fn delete_on_drop_removes_the_file() {
        let rel = Relation::binary("R", 0, 1, [(1, 2)]);
        let path = scratch("dropped.sview");
        write_view(&path, &rel, vars![1]).unwrap();
        {
            let mut view = StoredView::open(&path).unwrap();
            view.delete_on_drop();
        }
        assert!(!path.exists());
        cleanup(&path);
    }
}

