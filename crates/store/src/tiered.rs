//! [`TieredShardedIndex`]: hot/cold placement of hash-partitioned shards.
//!
//! This extends the `cqap-shard` seam with the storage tier: the database
//! is partitioned under the exact same [`ShardSpec`] contract, every shard
//! is built as a full [`CqapIndex`], and a *placement* then decides per
//! shard whether it stays **hot** (the in-memory index, hash probes) or
//! goes **cold** (spilled to a [`StoredIndex`], fence-indexed disk
//! probes). Since hot and cold shards answer identically — the storage
//! backend changes *where* S-view probes are served, never *what* they
//! return — the tiered index inherits the shard contract's exactness:
//! answers are bit-for-bit the unsharded reference, at any tier split.
//!
//! Placement is driven by [`PlacementPolicy`]: a per-deployment byte
//! budget for the hot tier plus observed per-shard request frequency.
//! Hottest shards are kept in memory first; whatever exceeds the budget
//! pays disk reads. That is the paper's space/time tradeoff made physical:
//! `S` resident buys probe latency, and the `tier_tradeoff` bench sweeps
//! exactly this axis.

use std::cmp::Reverse;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cqap_common::{CqapError, Result};
use cqap_obs::{GaugeId, MetricsSink};
use cqap_decomp::Pmtd;
use cqap_delta::{ApplyDelta, DeltaBatch, DeltaStats};
use cqap_panda::CqapIndex;
use cqap_query::{AccessRequest, Cqap};
use cqap_relation::{Database, Relation};
use cqap_serve::BatchAnswer;
use cqap_shard::{ShardSpec, ShardedIndex};

use crate::stored::{scratch_dir, StoredIndex};

/// Where one shard's index lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardTier {
    /// In memory: a full [`CqapIndex`], hash-probed.
    Hot,
    /// On disk: a [`StoredIndex`], fence-probed.
    Cold,
}

/// Decides the hot/cold split: a hot-tier byte budget plus observed
/// per-shard request frequency.
#[derive(Clone, Debug)]
pub struct PlacementPolicy {
    hot_budget_bytes: usize,
    weights: Vec<u64>,
}

impl PlacementPolicy {
    /// A policy with the given hot-tier budget (bytes of S-view values
    /// resident in memory) and no traffic information (shards are then
    /// ranked by id).
    pub fn hot_budget(bytes: usize) -> Self {
        PlacementPolicy {
            hot_budget_bytes: bytes,
            weights: Vec::new(),
        }
    }

    /// Attaches observed per-shard request frequencies (higher = hotter).
    /// Typically produced by [`PlacementPolicy::observe`] over a traffic
    /// sample, or by [`TieredShardedIndex::observed_loads`] from a live
    /// deployment.
    #[must_use]
    pub fn with_weights(mut self, weights: Vec<u64>) -> Self {
        self.weights = weights;
        self
    }

    /// Counts how many request bindings each shard would receive under
    /// `spec` — the observed-frequency input to placement.
    pub fn observe(spec: &ShardSpec, requests: &[AccessRequest]) -> Vec<u64> {
        let mut weights = vec![0u64; spec.shards()];
        for request in requests {
            for tuple in request.tuples() {
                weights[spec.shard_of_binding(tuple)] += 1;
            }
        }
        weights
    }

    /// The placement: shards are visited hottest-first (weight descending,
    /// shard id as the deterministic tie-break) and kept [`ShardTier::Hot`]
    /// while they fit the remaining byte budget; everything else goes
    /// [`ShardTier::Cold`].
    pub fn place(&self, shard_bytes: &[usize]) -> Vec<ShardTier> {
        let mut order: Vec<usize> = (0..shard_bytes.len()).collect();
        order.sort_by_key(|&i| (Reverse(self.weights.get(i).copied().unwrap_or(0)), i));
        let mut remaining = self.hot_budget_bytes;
        let mut placement = vec![ShardTier::Cold; shard_bytes.len()];
        for shard in order {
            if shard_bytes[shard] <= remaining {
                remaining -= shard_bytes[shard];
                placement[shard] = ShardTier::Hot;
            }
        }
        placement
    }
}

enum TierShard {
    Hot(Arc<CqapIndex>),
    Cold(StoredIndex),
}

/// Per-tier space breakdown of a [`TieredShardedIndex`] — the "space" axis
/// of the tradeoff, split by where it is actually paid.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TieredSpace {
    /// Shards resident in memory.
    pub hot_shards: usize,
    /// Shards on disk.
    pub cold_shards: usize,
    /// S-view values resident in memory (hot shards).
    pub hot_values: usize,
    /// S-view values on disk (cold shards).
    pub cold_values: usize,
    /// Bytes the cold shards occupy on disk.
    pub cold_disk_bytes: u64,
    /// Values the cold shards keep resident (their sparse fence indexes).
    pub cold_resident_values: usize,
}

impl TieredSpace {
    /// Total intrinsic `S` across both tiers.
    pub fn total_values(&self) -> usize {
        self.hot_values + self.cold_values
    }

    /// Values actually resident in RAM: hot S-views plus cold fence
    /// indexes.
    pub fn resident_values(&self) -> usize {
        self.hot_values + self.cold_resident_values
    }
}

impl std::fmt::Display for TieredSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hot shard(s): {} values in RAM | {} cold shard(s): {} values in {} bytes on disk, {} fence values resident",
            self.hot_shards,
            self.hot_values,
            self.cold_shards,
            self.cold_values,
            self.cold_disk_bytes,
            self.cold_resident_values,
        )
    }
}

/// A hash-sharded CQAP index whose shards are independently placed hot
/// (in-memory [`CqapIndex`]) or cold ([`StoredIndex`] on disk), under the
/// unchanged [`ShardSpec`] partition contract.
pub struct TieredShardedIndex {
    spec: ShardSpec,
    shards: Vec<TierShard>,
    /// Bindings routed to each shard since construction — the observed
    /// request frequency a re-placement would feed back into
    /// [`PlacementPolicy::with_weights`].
    loads: Vec<AtomicU64>,
    /// Observability seam: publishes the per-tier resident-byte gauges
    /// whenever the placement or the shard contents change. Disabled
    /// (free) until [`TieredShardedIndex::set_metrics_sink`].
    sink: MetricsSink,
    // Declared last so the cold shards' spill subdirectories are removed
    // before the parent scratch dir (present only for `build_in_temp`).
    _temp_parent: Option<TempParent>,
}

struct TempParent(std::path::PathBuf);

impl Drop for TempParent {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir(&self.0);
    }
}

impl TieredShardedIndex {
    /// Builds the `k` shard indexes (concurrently, via
    /// [`ShardedIndex::build`]), sizes them, and applies `policy` to place
    /// each shard hot or cold; cold shards are spilled under
    /// `<dir>/shard<i>` and their in-memory copies dropped.
    ///
    /// # Errors
    /// Propagates shard-build failures and spill I/O errors.
    pub fn build(
        cqap: &Cqap,
        db: &Database,
        pmtds: &[Pmtd],
        shards: usize,
        policy: &PlacementPolicy,
        dir: impl AsRef<Path>,
    ) -> Result<Self> {
        let sharded = ShardedIndex::build(cqap, db, pmtds, shards)?;
        let bytes: Vec<usize> = sharded
            .shards()
            .iter()
            .map(|s| s.space_used() * std::mem::size_of::<cqap_common::Val>())
            .collect();
        let placement = policy.place(&bytes);
        TieredShardedIndex::from_sharded(sharded, &placement, dir)
    }

    /// [`TieredShardedIndex::build`] into a fresh process-unique scratch
    /// directory, removed again when the index drops.
    ///
    /// # Errors
    /// Same failure modes as [`TieredShardedIndex::build`].
    pub fn build_in_temp(
        cqap: &Cqap,
        db: &Database,
        pmtds: &[Pmtd],
        shards: usize,
        policy: &PlacementPolicy,
    ) -> Result<Self> {
        let dir = scratch_dir("tiered");
        let mut built = TieredShardedIndex::build(cqap, db, pmtds, shards, policy, &dir)?;
        built._temp_parent = Some(TempParent(dir));
        Ok(built)
    }

    /// Applies an explicit per-shard placement to an already built
    /// [`ShardedIndex`], consuming it: hot shards keep their in-memory
    /// index, cold shards are spilled under `<dir>/shard<i>` and the
    /// in-memory copy is released.
    ///
    /// # Errors
    /// Fails if `placement` does not have exactly one entry per shard, or
    /// on spill I/O errors.
    pub fn from_sharded(
        sharded: ShardedIndex,
        placement: &[ShardTier],
        dir: impl AsRef<Path>,
    ) -> Result<Self> {
        if placement.len() != sharded.num_shards() {
            return Err(CqapError::InvalidQuery(format!(
                "placement has {} entries for {} shards",
                placement.len(),
                sharded.num_shards()
            )));
        }
        let spec = *sharded.spec();
        let arcs: Vec<Arc<CqapIndex>> = sharded.shards().to_vec();
        drop(sharded);
        let dir = dir.as_ref();
        let mut shards = Vec::with_capacity(arcs.len());
        for (i, (index, tier)) in arcs.into_iter().zip(placement).enumerate() {
            shards.push(match tier {
                ShardTier::Hot => TierShard::Hot(index),
                ShardTier::Cold => {
                    let stored = StoredIndex::spill(&index, dir.join(format!("shard{i}")))?;
                    // `index` drops here: the cold shard's in-memory
                    // S-views are released.
                    TierShard::Cold(stored)
                }
            });
        }
        let loads = (0..shards.len()).map(|_| AtomicU64::new(0)).collect();
        Ok(TieredShardedIndex {
            spec,
            shards,
            loads,
            sink: MetricsSink::disabled(),
            _temp_parent: None,
        })
    }

    /// The partition contract.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// Number of shards `k`.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The tier of each shard, in shard order.
    pub fn placements(&self) -> Vec<ShardTier> {
        self.shards
            .iter()
            .map(|s| match s {
                TierShard::Hot(_) => ShardTier::Hot,
                TierShard::Cold(_) => ShardTier::Cold,
            })
            .collect()
    }

    /// Bindings served per shard since construction — the observed
    /// frequency input for the next placement round.
    pub fn observed_loads(&self) -> Vec<u64> {
        self.loads.iter().map(|l| l.load(Ordering::Relaxed)).collect()
    }

    /// Attaches a metrics sink to every shard, both tiers: hot shards
    /// record delta-apply latency and recompiles, cold shards add segment
    /// reads/bytes, overlay probes and compactions. Also publishes the
    /// per-tier resident-byte gauges immediately (and again after every
    /// [`ApplyDelta::apply_delta`]), so a scrape always sees the current
    /// hot/cold split. Like [`ApplyDelta::apply_delta`], this needs
    /// exclusive ownership of the hot shards.
    ///
    /// # Errors
    /// Fails if a hot shard `Arc` is shared (serving handles must be
    /// dropped before mutating).
    pub fn set_metrics_sink(&mut self, sink: MetricsSink) -> Result<()> {
        for shard in &mut self.shards {
            match shard {
                TierShard::Hot(index) => {
                    let index = Arc::get_mut(index).ok_or_else(|| {
                        CqapError::Other(
                            "cannot attach a metrics sink: a hot shard is shared \
                             (serving handles must be dropped before mutating)"
                                .into(),
                        )
                    })?;
                    index.set_metrics_sink(sink.clone());
                }
                TierShard::Cold(stored) => stored.set_metrics_sink(sink.clone()),
            }
        }
        self.sink = sink;
        self.publish_space_gauges();
        Ok(())
    }

    /// Publishes the RAM-resident footprint of each tier as absolute
    /// gauges — hot S-view values and the cold shards' resident fence
    /// values, both in bytes of [`cqap_common::Val`] — plus the cold
    /// tier's *compressed* on-disk bytes (the v2 run files' sizes), so
    /// the exposition carries the physical footprint the byte budget
    /// actually buys.
    fn publish_space_gauges(&self) {
        if !self.sink.is_enabled() {
            return;
        }
        let space = self.space_used();
        let val_bytes = std::mem::size_of::<cqap_common::Val>() as i64;
        self.sink
            .gauge_set(GaugeId::HotResidentBytes, space.hot_values as i64 * val_bytes);
        self.sink.gauge_set(
            GaugeId::ColdResidentBytes,
            space.cold_resident_values as i64 * val_bytes,
        );
        self.sink
            .gauge_set(GaugeId::ColdDiskBytes, space.cold_disk_bytes as i64);
    }

    /// The per-tier space breakdown.
    pub fn space_used(&self) -> TieredSpace {
        let mut space = TieredSpace::default();
        for shard in &self.shards {
            match shard {
                TierShard::Hot(index) => {
                    space.hot_shards += 1;
                    space.hot_values += index.space_used();
                }
                TierShard::Cold(stored) => {
                    space.cold_shards += 1;
                    space.cold_values += stored.space_used();
                    space.cold_disk_bytes += stored.disk_bytes();
                    space.cold_resident_values += stored.resident_values();
                }
            }
        }
        space
    }

    /// Bytes each shard's S-views occupy, by the uniform
    /// `values × size_of::<Val>()` measure both tiers share — the size
    /// input a placement decision works from.
    pub fn shard_bytes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|shard| {
                let values = match shard {
                    TierShard::Hot(index) => index.space_used(),
                    TierShard::Cold(stored) => stored.space_used(),
                };
                values * std::mem::size_of::<cqap_common::Val>()
            })
            .collect()
    }

    /// Re-scores the hot/cold split against the shards' **current** sizes:
    /// as deltas grow or shrink shards, the placement `policy` decided at
    /// build time can drift from what it would decide now. Returns the
    /// placement the policy picks today (feed it
    /// [`TieredShardedIndex::observed_loads`] via
    /// [`PlacementPolicy::with_weights`] for traffic-aware scoring);
    /// comparing it with [`TieredShardedIndex::placements`] tells an
    /// operator which shards are worth migrating at the next rebuild.
    pub fn replan(&self, policy: &PlacementPolicy) -> Vec<ShardTier> {
        policy.place(&self.shard_bytes())
    }

    fn answer_shard(&self, shard: usize, sub: &AccessRequest) -> Result<Relation> {
        self.loads[shard].fetch_add(sub.len().max(1) as u64, Ordering::Relaxed);
        match &self.shards[shard] {
            TierShard::Hot(index) => index.answer(sub),
            TierShard::Cold(stored) => stored.answer(sub),
        }
    }

    /// Answers an access request exactly like [`ShardedIndex::answer`]:
    /// split by routing hash, answer per shard (from whichever tier holds
    /// it), union the per-shard answers (set contents guaranteed; tuple
    /// order is an implementation detail of the size-directed union).
    ///
    /// # Errors
    /// Propagates the first failing shard's error.
    pub fn answer(&self, request: &AccessRequest) -> Result<Relation> {
        let mut parts = self.spec.split_request(request)?.into_iter();
        let (shard, sub) = parts.next().expect("split_request is never empty");
        let mut answer = self.answer_shard(shard, &sub)?;
        for (shard, sub) in parts {
            // Both sides are owned: move the larger, insert the smaller.
            answer = answer.union_with(self.answer_shard(shard, &sub)?)?;
        }
        Ok(answer)
    }
}

/// Incremental maintenance across tiers: the batch routes through the
/// unchanged [`ShardSpec`] contract ([`ShardSpec::partition_delta`] —
/// delta tuples partition or replicate exactly like the base data), then
/// each shard absorbs its share through whichever tier holds it: hot
/// shards update their hash-backed views in place, cold shards buffer
/// LSM-style overlays on their spilled runs. Stats are shard-local sums,
/// as in [`cqap_shard::ShardedIndex`]'s implementation.
impl ApplyDelta for TieredShardedIndex {
    fn apply_delta(&mut self, batch: &DeltaBatch) -> Result<DeltaStats> {
        let parts = {
            let db = match &self.shards[0] {
                TierShard::Hot(index) => index.database(),
                TierShard::Cold(stored) => stored.database(),
            };
            self.spec.partition_delta(batch, db)?
        };
        let mut stats = DeltaStats::default();
        for (shard, part) in self.shards.iter_mut().zip(parts) {
            match shard {
                TierShard::Hot(index) => {
                    let index = Arc::get_mut(index).ok_or_else(|| {
                        CqapError::Other(
                            "cannot apply a delta: a hot shard is shared (serving \
                             handles must be dropped before mutating)"
                                .into(),
                        )
                    })?;
                    stats.merge(index.apply_delta(&part)?);
                }
                TierShard::Cold(stored) => stats.merge(stored.apply_delta(&part)?),
            }
        }
        // Deltas grow and shrink shards (and cold compactions fold
        // overlays into fresh runs), so re-publish the per-tier
        // resident-byte gauges after every absorbed batch.
        self.publish_space_gauges();
        Ok(stats)
    }
}

/// The tiered index serves through the same one-trait API as everything
/// else, including the request-coalescing protocol — so the serving
/// runtime, benches and examples run over hot/cold shards unchanged.
impl BatchAnswer for TieredShardedIndex {
    type Request = AccessRequest;
    type Answer = Relation;

    fn answer_one(&self, request: &Self::Request) -> Result<Self::Answer> {
        self.answer(request)
    }

    fn coalesce_class(request: &Self::Request) -> Option<u64> {
        cqap_serve::batch::access_request_class(request)
    }

    fn coalesce(requests: &[Self::Request]) -> Result<Self::Request> {
        cqap_serve::batch::coalesce_access_requests(requests)
    }

    fn extract(&self, bulk: &Self::Answer, request: &Self::Request) -> Result<Self::Answer> {
        cqap_serve::batch::extract_access_answer(bulk, request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_common::Tuple;
    use cqap_decomp::families as pf;
    use cqap_query::workload::{graph_pair_requests, zipf_multi_requests, Graph};

    fn fixture() -> (Cqap, Vec<Pmtd>, Graph, Database, CqapIndex) {
        let (cqap, pmtds) = pf::pmtds_3reach_fig1().unwrap();
        let g = Graph::skewed(50, 220, 4, 30, 23);
        let db = g.as_path_database(3);
        let reference = CqapIndex::build(&cqap, &db, &pmtds).unwrap();
        (cqap, pmtds, g, db, reference)
    }

    #[test]
    fn placement_is_greedy_hottest_first_within_budget() {
        let bytes = [100usize, 200, 300, 50];
        // No weights: ranked by shard id; 0 and 1 fit a 350-byte budget,
        // then 2 does not, but 3 still does.
        let policy = PlacementPolicy::hot_budget(350);
        assert_eq!(
            policy.place(&bytes),
            vec![ShardTier::Hot, ShardTier::Hot, ShardTier::Cold, ShardTier::Hot]
        );
        // Weighted: shard 2 is hottest and takes the budget first.
        let policy = PlacementPolicy::hot_budget(350).with_weights(vec![1, 2, 100, 3]);
        assert_eq!(
            policy.place(&bytes),
            vec![ShardTier::Cold, ShardTier::Cold, ShardTier::Hot, ShardTier::Hot]
        );
        // Zero budget: everything cold; infinite budget: everything hot.
        assert!(PlacementPolicy::hot_budget(0)
            .place(&bytes)
            .iter()
            .all(|t| *t == ShardTier::Cold));
        assert!(PlacementPolicy::hot_budget(usize::MAX)
            .place(&bytes)
            .iter()
            .all(|t| *t == ShardTier::Hot));
    }

    #[test]
    fn observe_counts_bindings_per_shard() {
        let (cqap, _, g, _, _) = fixture();
        let spec = ShardSpec::new(&cqap, 3).unwrap();
        let requests: Vec<AccessRequest> = graph_pair_requests(&g, 50, 7)
            .into_iter()
            .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).unwrap())
            .collect();
        let weights = PlacementPolicy::observe(&spec, &requests);
        assert_eq!(weights.len(), 3);
        assert_eq!(weights.iter().sum::<u64>(), 50);
    }

    #[test]
    fn tiered_answers_equal_unsharded_at_every_split() {
        let (cqap, pmtds, g, db, reference) = fixture();
        for cold in 0..=3usize {
            let sharded = ShardedIndex::build(&cqap, &db, &pmtds, 3).unwrap();
            let placement: Vec<ShardTier> = (0..3)
                .map(|i| if i < cold { ShardTier::Cold } else { ShardTier::Hot })
                .collect();
            let tiered = TieredShardedIndex::from_sharded(
                sharded,
                &placement,
                scratch_dir("split-test"),
            )
            .unwrap();
            assert_eq!(tiered.placements(), placement);
            for (u, v) in graph_pair_requests(&g, 25, 29) {
                let request = AccessRequest::single(cqap.access(), &[u, v]).unwrap();
                assert_eq!(
                    tiered.answer(&request).unwrap(),
                    reference.answer(&request).unwrap(),
                    "cold = {cold}, request ({u},{v})"
                );
            }
            for tuples in zipf_multi_requests(&g, 8, 5, 1.1, 31) {
                let tuples: Vec<Tuple> =
                    tuples.into_iter().map(|(u, v)| Tuple::pair(u, v)).collect();
                let request = AccessRequest::new(cqap.access(), tuples).unwrap();
                assert_eq!(
                    tiered.answer(&request).unwrap(),
                    reference.answer(&request).unwrap(),
                    "cold = {cold}"
                );
            }
        }
    }

    #[test]
    fn space_reports_per_tier_and_loads_accumulate() {
        let (cqap, pmtds, g, db, _) = fixture();
        let policy = PlacementPolicy::hot_budget(0);
        let tiered =
            TieredShardedIndex::build_in_temp(&cqap, &db, &pmtds, 2, &policy).unwrap();
        let space = tiered.space_used();
        assert_eq!(space.cold_shards, 2);
        assert_eq!(space.hot_shards, 0);
        assert_eq!(space.hot_values, 0);
        assert!(space.cold_values > 0);
        assert!(space.cold_disk_bytes > 0);
        assert!(space.resident_values() < space.total_values());
        assert!(space.to_string().contains("cold"));

        assert_eq!(tiered.observed_loads(), vec![0, 0]);
        for (u, v) in graph_pair_requests(&g, 20, 37) {
            let request = AccessRequest::single(cqap.access(), &[u, v]).unwrap();
            tiered.answer(&request).unwrap();
        }
        assert_eq!(tiered.observed_loads().iter().sum::<u64>(), 20);
    }

    #[test]
    fn resident_byte_gauges_track_the_tier_split() {
        use cqap_delta::{ApplyDelta, DeltaBatch};

        let (cqap, pmtds, _, db, _) = fixture();
        let val_bytes = std::mem::size_of::<cqap_common::Val>() as i64;

        // All-cold: the hot gauge is zero, the cold gauge is exactly the
        // resident fence values.
        let policy = PlacementPolicy::hot_budget(0);
        let mut tiered =
            TieredShardedIndex::build_in_temp(&cqap, &db, &pmtds, 2, &policy).unwrap();
        let sink = MetricsSink::recording();
        tiered.set_metrics_sink(sink.clone()).unwrap();
        let space = tiered.space_used();
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.gauge(GaugeId::HotResidentBytes), 0);
        assert_eq!(
            snap.gauge(GaugeId::ColdResidentBytes),
            space.cold_resident_values as i64 * val_bytes
        );
        assert!(snap.gauge(GaugeId::ColdResidentBytes) > 0);
        // The disk gauge carries the cold runs' *compressed* bytes: it
        // matches the space report exactly and sits well under the
        // logical (values x 8) footprint of the cold tier.
        assert_eq!(snap.gauge(GaugeId::ColdDiskBytes), space.cold_disk_bytes as i64);
        assert!(snap.gauge(GaugeId::ColdDiskBytes) > 0);
        assert!(space.cold_disk_bytes < (space.cold_values * 8) as u64);

        // A delta re-publishes: gauges still match the current breakdown.
        let mut batch = DeltaBatch::new();
        for (i, rel) in db.relations().iter().enumerate() {
            let base = 9_000 + i as u64;
            batch = batch.insert(rel.name().to_string(), vec![Tuple::pair(base, base + 1)]);
        }
        tiered.apply_delta(&batch).unwrap();
        let space = tiered.space_used();
        let snap = sink.snapshot().unwrap();
        assert_eq!(
            snap.gauge(GaugeId::ColdResidentBytes),
            space.cold_resident_values as i64 * val_bytes
        );
        assert_eq!(snap.gauge(GaugeId::ColdDiskBytes), space.cold_disk_bytes as i64);

        // All-hot: the cold gauge is zero and the hot gauge carries the
        // full S-view footprint.
        let policy = PlacementPolicy::hot_budget(usize::MAX);
        let mut tiered =
            TieredShardedIndex::build_in_temp(&cqap, &db, &pmtds, 2, &policy).unwrap();
        let sink = MetricsSink::recording();
        tiered.set_metrics_sink(sink.clone()).unwrap();
        let space = tiered.space_used();
        let snap = sink.snapshot().unwrap();
        assert_eq!(
            snap.gauge(GaugeId::HotResidentBytes),
            space.hot_values as i64 * val_bytes
        );
        assert!(snap.gauge(GaugeId::HotResidentBytes) > 0);
        assert_eq!(snap.gauge(GaugeId::ColdResidentBytes), 0);
        assert_eq!(snap.gauge(GaugeId::ColdDiskBytes), 0);
    }

    #[test]
    fn placement_arity_is_validated_and_temp_dirs_are_cleaned() {
        let (cqap, pmtds, _, db, _) = fixture();
        let sharded = ShardedIndex::build(&cqap, &db, &pmtds, 2).unwrap();
        assert!(TieredShardedIndex::from_sharded(
            sharded,
            &[ShardTier::Hot],
            scratch_dir("arity-test")
        )
        .is_err());

        let policy = PlacementPolicy::hot_budget(0);
        let tiered =
            TieredShardedIndex::build_in_temp(&cqap, &db, &pmtds, 2, &policy).unwrap();
        let dir = tiered._temp_parent.as_ref().unwrap().0.clone();
        assert!(dir.exists());
        drop(tiered);
        assert!(!dir.exists(), "scratch dir cleaned up on drop");
    }
}
