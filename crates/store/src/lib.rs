//! # cqap-store
//!
//! The tiered storage backend: disk-resident S-views with hot/cold shard
//! placement.
//!
//! The paper's central object is the space budget `S` — it decides which
//! views are materialized and how fast probes are. Until this crate, `S`
//! only existed in RAM; here it becomes physical at a second storage tier:
//!
//! * [`format`](mod@format) — the on-disk view format: each S-view serialized as a
//!   sorted run of `(key, tuple-block)` records, probed via a sparse
//!   in-memory *fence index* (binary search over the fences, then one
//!   contiguous file read). Plain `std` files, no serialization or mmap
//!   dependency.
//! * [`StoredIndex`] — the framework driver answering from disk: built
//!   from the **same preprocessing output** as
//!   [`CqapIndex`](cqap_panda::CqapIndex) and running the **same online
//!   phase** through the
//!   [`SViewProbe`](cqap_yannakakis::SViewProbe) seam, so its answers are
//!   identical to the in-memory index (proptest-enforced in
//!   `crates/store/tests`) while the S-views' resident footprint shrinks
//!   to the fence indexes.
//! * [`TieredShardedIndex`] — the `cqap-shard` seam extended by a storage
//!   dimension: every hash shard is independently placed
//!   [`Hot`](ShardTier::Hot) (in-memory `CqapIndex`) or
//!   [`Cold`](ShardTier::Cold) (`StoredIndex`) by a [`PlacementPolicy`]
//!   driven by a hot-tier byte budget and observed per-shard request
//!   frequency, with [`TieredShardedIndex::space_used`] reporting the
//!   per-tier breakdown ([`TieredSpace`]).
//!
//! Both index types implement [`BatchAnswer`](cqap_serve::BatchAnswer)
//! (including the request-coalescing protocol), so the entire serving
//! surface — `ServeRuntime`, the benches, the examples — runs over the
//! disk tier unchanged. The `tier_tradeoff` bench sweeps the fraction of
//! cold shards under zipf traffic and dumps the space-vs-latency curve as
//! a `BENCH_*.json` baseline.
//!
//! ## Worked example: spill, then answer identically
//!
//! ```
//! use cqap_decomp::families::pmtds_3reach_fig1;
//! use cqap_panda::CqapIndex;
//! use cqap_query::workload::{graph_pair_requests, Graph};
//! use cqap_query::AccessRequest;
//! use cqap_store::StoredIndex;
//!
//! let (cqap, pmtds) = pmtds_3reach_fig1().unwrap();
//! let graph = Graph::random(40, 170, 42);
//! let db = graph.as_path_database(3);
//!
//! // Preprocess once in memory, then spill the S-views to disk (a
//! // process-unique scratch dir, so concurrent runs cannot collide).
//! let hot = CqapIndex::build(&cqap, &db, &pmtds).unwrap();
//! let cold = StoredIndex::spill(&hot, cqap_store::scratch_dir("doc")).unwrap();
//!
//! // Same intrinsic S, a fraction of it resident, identical answers.
//! assert_eq!(cold.space_used(), hot.space_used());
//! assert!(cold.resident_values() < cold.space_used());
//! for (u, v) in graph_pair_requests(&graph, 10, 7) {
//!     let request = AccessRequest::single(cqap.access(), &[u, v]).unwrap();
//!     assert_eq!(cold.answer(&request).unwrap(), hot.answer(&request).unwrap());
//! }
//! // Dropping `cold` deletes the spilled files again.
//! ```

#![deny(missing_docs)]

pub mod format;
pub mod stored;
pub mod tiered;

pub use format::StoredView;
pub use stored::{scratch_dir, StoredIndex, StoredViews};
pub use tiered::{PlacementPolicy, ShardTier, TieredShardedIndex, TieredSpace};
