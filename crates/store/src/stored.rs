//! [`StoredIndex`]: the framework driver answering from disk-resident
//! S-views.
//!
//! A `StoredIndex` is built from the **same preprocessing output** as an
//! in-memory [`CqapIndex`] — each plan's semijoin-reduced, link-keyed
//! S-views are spilled to one sorted-run file per view (see
//! [`crate::format`]) — and answers through the **same online phase**
//! ([`OnlineYannakakis::answer_with`]), with the hash-index probes replaced
//! by fence-indexed segment reads. Because every probe returns the same
//! tuples, the answers are identical to the in-memory index (the
//! equivalence proptest in `crates/store/tests` enforces this bit for
//! bit), while the resident footprint of the S-views drops to the fence
//! index.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use cqap_common::{CqapError, Result, Tuple};
use cqap_decomp::Pmtd;
use cqap_delta::{ApplyDelta, DeltaBatch, DeltaStats};
use cqap_panda::{CqapIndex, DeltaMaintenance};
use cqap_query::{AccessRequest, Cqap};
use cqap_relation::{Database, Relation, Schema};
use cqap_serve::BatchAnswer;
use cqap_yannakakis::{OnlineYannakakis, SViewProbe};

use crate::format::{write_view, StoredView};

/// Counter for unique scratch-directory names within one process.
static SCRATCH: AtomicU64 = AtomicU64::new(0);

/// A fresh, process-unique directory path under the system temp dir (not
/// yet created). Used by the `*_in_temp` constructors, the benches and the
/// tests.
pub fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "cqap-store-{tag}-{}-{}",
        std::process::id(),
        SCRATCH.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Removes `dir` itself once the spilled files inside are gone. Declared
/// *after* the views in every owning struct, so Rust's field drop order
/// (declaration order) deletes the files first and then the — by then
/// empty — directory. `remove_dir` is non-recursive, so a caller-provided
/// directory holding unrelated files is never destroyed.
struct DirCleanup(PathBuf);

impl Drop for DirCleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir(&self.0);
    }
}

/// The disk-resident S-views of one PMTD plan, implementing the
/// [`SViewProbe`] seam of the online phase.
pub struct StoredViews {
    views: Vec<Option<StoredView>>,
}

impl StoredViews {
    /// Spills every materialized view of `pre` to `<dir>/<prefix>_node<n>.sview`
    /// and opens the files back as fence-indexed stored views (which own
    /// and delete the files when dropped).
    ///
    /// # Errors
    /// Fails on I/O errors.
    pub fn spill(
        pre: &cqap_yannakakis::PreprocessedViews,
        dir: &Path,
        prefix: &str,
    ) -> Result<StoredViews> {
        let mut views: Vec<Option<StoredView>> = Vec::new();
        for (node, rel, link) in pre.materialized() {
            let path = dir.join(format!("{prefix}_node{node}.sview"));
            write_view(&path, rel, link)?;
            let mut view = StoredView::open(&path)?;
            view.delete_on_drop();
            if views.len() <= node {
                views.resize_with(node + 1, || None);
            }
            views[node] = Some(view);
        }
        Ok(StoredViews { views })
    }

    fn view(&self, node: usize) -> Result<&StoredView> {
        self.views
            .get(node)
            .and_then(|v| v.as_ref())
            .ok_or_else(|| {
                CqapError::InvalidPmtd(format!("S-view {node} was not spilled"))
            })
    }

    /// Stored values across all views (the intrinsic `S`, now on disk).
    pub fn stored_values(&self) -> usize {
        self.views.iter().flatten().map(StoredView::stored_values).sum()
    }

    /// Total bytes on disk.
    pub fn disk_bytes(&self) -> u64 {
        self.views.iter().flatten().map(StoredView::disk_bytes).sum()
    }

    /// Values resident in RAM (the fence indexes plus any delta overlays).
    pub fn resident_values(&self) -> usize {
        self.views.iter().flatten().map(StoredView::resident_values).sum()
    }

    /// Absorbs one node's net ΔS-view into that view's delta overlay (see
    /// [`StoredView::apply_delta`]); an oversized overlay compacts itself
    /// into a rewritten run.
    ///
    /// # Errors
    /// Fails if the node was never spilled, or on compaction I/O errors.
    pub fn apply_delta(
        &mut self,
        node: usize,
        inserts: &[Tuple],
        deletes: &[Tuple],
    ) -> Result<()> {
        self.views
            .get_mut(node)
            .and_then(|v| v.as_mut())
            .ok_or_else(|| {
                CqapError::InvalidPmtd(format!("S-view {node} was not spilled"))
            })?
            .apply_delta(inserts, deletes)
    }

    /// Forces every view with a pending overlay to compact into a fresh
    /// validated run (see [`StoredView::compact`]).
    ///
    /// # Errors
    /// Fails on compaction I/O errors.
    pub fn compact(&mut self) -> Result<()> {
        for view in self.views.iter_mut().flatten() {
            view.compact()?;
        }
        Ok(())
    }

    /// Delta tuples buffered across all views' overlays — zero after
    /// [`StoredViews::compact`].
    pub fn overlay_len(&self) -> usize {
        self.views.iter().flatten().map(StoredView::overlay_len).sum()
    }

    /// Attaches a metrics sink to every stored view (see
    /// [`StoredView::set_metrics_sink`]).
    pub fn set_metrics_sink(&mut self, sink: &cqap_obs::MetricsSink) {
        for view in self.views.iter_mut().flatten() {
            view.set_metrics_sink(sink.clone());
        }
    }
}

impl SViewProbe for StoredViews {
    fn schema(&self, node: usize) -> Option<&Schema> {
        self.views.get(node).and_then(|v| v.as_ref()).map(StoredView::schema)
    }

    /// Disk probes decode straight into the caller's buffer out of this
    /// worker's reused segment buffer — no per-probe allocation.
    fn probe_into(&self, node: usize, key: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        self.view(node)?.probe_into(key, out)
    }

    /// Columnar probes decode the matching segment block straight into the
    /// caller's column runs — the cold tier's bytes reach the columnar
    /// executor without any intermediate `Tuple` boxing.
    fn probe_columns(
        &self,
        node: usize,
        key: &Tuple,
        out: &mut cqap_yannakakis::ColumnRun,
    ) -> Result<()> {
        self.view(node)?.probe_columns(key, out)
    }

    /// Semijoin probes walk the segment's keys only — no tuple block is
    /// decoded, no output vector is built.
    fn contains(&self, node: usize, key: &Tuple) -> Result<bool> {
        self.view(node)?.contains_key(key)
    }
}

/// A CQAP index whose S-views live on disk: same preprocessing content,
/// same online algorithm, answers identical to [`CqapIndex`] — but the
/// space budget `S` is spent on the cold tier, with only the fence
/// indexes (and the input database) resident.
pub struct StoredIndex {
    cqap: Cqap,
    db: Database,
    plans: Vec<(OnlineYannakakis, StoredViews)>,
    /// The compiled pipelines, `Arc`-shared with the source index: the
    /// disk backend executes the *same* compiled plans as the in-memory
    /// one — only the probes behind `SViewProbe` change — and the
    /// pre-built atom indexes inside them exist once per deployment, not
    /// once per backend. (Like the retained database, they are `O(|D|)`
    /// state outside the `space_used`/`resident_values` S-accounting.)
    compiled: Vec<std::sync::Arc<cqap_panda::CompiledPmtd>>,
    /// This backend's own maintenance lineage (cloned from the source
    /// index at spill time): compiled delta plans, per-view support
    /// counts and the shared atom-index memo. Diverges from the source's
    /// lineage the moment either side applies a delta.
    maintenance: DeltaMaintenance,
    // Declared last: removes the spill directory after the views above
    // have deleted their files.
    _dir: DirCleanup,
}

impl StoredIndex {
    /// Spills an existing in-memory index: every plan's preprocessed
    /// S-views are written to sorted-run files under `dir` (created if
    /// missing). The returned index owns the files — they are deleted when
    /// it drops, and `dir` itself is removed if that leaves it empty.
    ///
    /// # Errors
    /// Fails on I/O errors.
    pub fn spill(index: &CqapIndex, dir: impl AsRef<Path>) -> Result<StoredIndex> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| {
            CqapError::Other(format!("cannot create spill dir {}: {e}", dir.display()))
        })?;
        let mut plans = Vec::new();
        for (i, (evaluator, pre)) in index.plans().enumerate() {
            let stored = StoredViews::spill(pre, dir, &format!("plan{i}"))?;
            plans.push((evaluator.clone(), stored));
        }
        Ok(StoredIndex {
            cqap: index.cqap().clone(),
            db: index.database().clone(),
            plans,
            compiled: index.compiled().cloned().collect(),
            maintenance: index.maintenance().clone(),
            _dir: DirCleanup(dir.to_path_buf()),
        })
    }

    /// Runs the full preprocessing phase and spills the result: equivalent
    /// to `CqapIndex::build` followed by [`StoredIndex::spill`] (the
    /// in-memory views are dropped once written).
    ///
    /// # Errors
    /// Propagates build failures (mismatched PMTDs, empty PMTD set) and
    /// I/O errors.
    pub fn build(
        cqap: &Cqap,
        db: &Database,
        pmtds: &[Pmtd],
        dir: impl AsRef<Path>,
    ) -> Result<StoredIndex> {
        let index = CqapIndex::build(cqap, db, pmtds)?;
        StoredIndex::spill(&index, dir)
    }

    /// [`StoredIndex::build`] into a fresh process-unique directory under
    /// the system temp dir (removed again when the index drops).
    ///
    /// # Errors
    /// Same failure modes as [`StoredIndex::build`].
    pub fn build_in_temp(cqap: &Cqap, db: &Database, pmtds: &[Pmtd]) -> Result<StoredIndex> {
        StoredIndex::build(cqap, db, pmtds, scratch_dir("stored"))
    }

    /// The CQAP this index answers.
    pub fn cqap(&self) -> &Cqap {
        &self.cqap
    }

    /// The retained input database (maintained in place by
    /// [`ApplyDelta::apply_delta`]; the online phase computes T-views from
    /// it, and sharded owners read relation schemas off it when routing
    /// delta tuples).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Forces every spilled view with a pending delta overlay to compact:
    /// the merged run is written to a temp file, re-validated, and renamed
    /// over the base (see [`StoredView::compact`](crate::format::StoredView::compact)).
    /// Normally compaction triggers itself by overlay size; this is the
    /// explicit hook for tests and maintenance windows.
    ///
    /// # Errors
    /// Fails on compaction I/O errors.
    pub fn compact(&mut self) -> Result<()> {
        for (_, views) in &mut self.plans {
            views.compact()?;
        }
        Ok(())
    }

    /// Delta tuples buffered across all views' overlays.
    pub fn overlay_len(&self) -> usize {
        self.plans.iter().map(|(_, v)| v.overlay_len()).sum()
    }

    /// Attaches a metrics sink to the whole disk tier: every stored view
    /// (segment reads/bytes, overlay probes, compactions) and this
    /// backend's delta maintenance (apply latency, net ops, recompiles).
    pub fn set_metrics_sink(&mut self, sink: cqap_obs::MetricsSink) {
        for (_, views) in &mut self.plans {
            views.set_metrics_sink(&sink);
        }
        self.maintenance.set_metrics_sink(sink);
    }

    /// Number of PMTDs in the plan set.
    pub fn num_pmtds(&self) -> usize {
        self.plans.len()
    }

    /// The intrinsic space cost (stored values across all S-views) — the
    /// same measure as [`CqapIndex::space_used`], so a spilled index
    /// reports the same `S` as its in-memory source.
    pub fn space_used(&self) -> usize {
        self.plans.iter().map(|(_, v)| v.stored_values()).sum()
    }

    /// Bytes the S-views occupy on disk.
    pub fn disk_bytes(&self) -> u64 {
        self.plans.iter().map(|(_, v)| v.disk_bytes()).sum()
    }

    /// Values resident in RAM for probing (the sparse fence indexes) —
    /// the cold tier's actual memory footprint, excluding the database.
    pub fn resident_values(&self) -> usize {
        self.plans.iter().map(|(_, v)| v.resident_values()).sum()
    }

    /// Online phase: identical to [`CqapIndex::answer`] — literally the
    /// same compiled columnar driver loop
    /// ([`cqap_panda::answer_with_compiled`]) executing the same
    /// [`cqap_panda::CompiledPmtd`] pipelines — with every S-view probe
    /// served from disk, decoded column-directly out of the segment reads.
    ///
    /// # Errors
    /// The same validation failures as the in-memory driver, plus I/O
    /// errors from the cold tier.
    pub fn answer(&self, request: &AccessRequest) -> Result<Relation> {
        cqap_panda::answer_with_compiled(
            &self.cqap,
            self.compiled
                .iter()
                .zip(&self.plans)
                .map(|(compiled, (_, views))| (compiled.as_ref(), views)),
            request,
        )
    }

    /// The row-compiled online phase of PR 4 over the disk backend — the
    /// tested fallback and the columnar path's bench baseline, mirroring
    /// [`CqapIndex::answer_rows`].
    ///
    /// # Errors
    /// Same failure modes as [`StoredIndex::answer`].
    pub fn answer_rows(&self, request: &AccessRequest) -> Result<Relation> {
        cqap_panda::answer_with_compiled_rows(
            &self.cqap,
            self.compiled
                .iter()
                .zip(&self.plans)
                .map(|(compiled, (_, views))| (compiled.as_ref(), views)),
            request,
        )
    }

    /// The pre-compilation online phase over the disk backend — the
    /// interpreted driver loop ([`cqap_panda::answer_with_plans`]), kept
    /// as the reference the compiled disk path is tested against.
    ///
    /// # Errors
    /// Same failure modes as [`StoredIndex::answer`].
    pub fn answer_interpreted(&self, request: &AccessRequest) -> Result<Relation> {
        cqap_panda::answer_with_plans(
            &self.cqap,
            &self.db,
            self.plans.iter().map(|(evaluator, views)| (evaluator, views)),
            request,
        )
    }
}

/// Incremental maintenance of the disk tier: the same net effect and
/// ΔS-views as the in-memory index (computed by this backend's own
/// [`DeltaMaintenance`] lineage), absorbed as LSM-style delta overlays on
/// the spilled runs instead of hash-index edits. Probes merge base +
/// overlay until a size-triggered compaction rewrites the fence-indexed
/// run; the compiled pipelines are refreshed exactly like the in-memory
/// backend's, so rebuild equivalence holds at any overlay state.
impl ApplyDelta for StoredIndex {
    fn apply_delta(&mut self, batch: &DeltaBatch) -> Result<DeltaStats> {
        let outcome = self.maintenance.apply(&self.cqap, &mut self.db, batch)?;
        if outcome.touched.is_empty() {
            return Ok(outcome.stats);
        }
        for ((_, views), view_deltas) in self.plans.iter_mut().zip(&outcome.views) {
            for (node, ins, del) in view_deltas {
                views.apply_delta(*node, ins, del)?;
            }
        }
        let full = self.maintenance.full_for_recompile(&self.cqap, &self.db)?;
        let mut compiled = Vec::with_capacity(self.plans.len());
        for (evaluator, views) in &self.plans {
            compiled.push(std::sync::Arc::new(self.maintenance.recompile(
                &self.cqap,
                &self.db,
                evaluator,
                views,
                &full,
            )?));
        }
        self.compiled = compiled;
        Ok(outcome.stats)
    }
}

/// The disk backend serves through the same one-trait API as every other
/// structure — a `StoredIndex` drops into `ServeRuntime`, the benches and
/// the examples exactly like the in-memory driver. It also joins the
/// request-coalescing protocol: merged probes amortize cold-tier segment
/// reads across a whole batch.
impl BatchAnswer for StoredIndex {
    type Request = AccessRequest;
    type Answer = Relation;

    fn answer_one(&self, request: &Self::Request) -> Result<Self::Answer> {
        self.answer(request)
    }

    fn coalesce_class(request: &Self::Request) -> Option<u64> {
        cqap_serve::batch::access_request_class(request)
    }

    fn coalesce(requests: &[Self::Request]) -> Result<Self::Request> {
        cqap_serve::batch::coalesce_access_requests(requests)
    }

    fn extract(&self, bulk: &Self::Answer, request: &Self::Request) -> Result<Self::Answer> {
        cqap_serve::batch::extract_access_answer(bulk, request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_decomp::families as pf;
    use cqap_query::workload::{graph_pair_requests, zipf_multi_requests, Graph};

    fn fixture() -> (Cqap, Vec<Pmtd>, Graph, Database, CqapIndex) {
        let (cqap, pmtds) = pf::pmtds_3reach_fig1().unwrap();
        let g = Graph::skewed(50, 220, 4, 30, 23);
        let db = g.as_path_database(3);
        let reference = CqapIndex::build(&cqap, &db, &pmtds).unwrap();
        (cqap, pmtds, g, db, reference)
    }

    #[test]
    fn stored_answers_equal_in_memory() {
        let (cqap, pmtds, g, db, reference) = fixture();
        let stored = StoredIndex::build_in_temp(&cqap, &db, &pmtds).unwrap();
        assert_eq!(stored.num_pmtds(), reference.num_pmtds());
        for (u, v) in graph_pair_requests(&g, 40, 29) {
            let request = AccessRequest::single(cqap.access(), &[u, v]).unwrap();
            assert_eq!(
                stored.answer(&request).unwrap(),
                reference.answer(&request).unwrap(),
                "request ({u},{v})"
            );
        }
        for tuples in zipf_multi_requests(&g, 10, 6, 1.1, 31) {
            let tuples: Vec<Tuple> = tuples.into_iter().map(|(u, v)| Tuple::pair(u, v)).collect();
            let request = AccessRequest::new(cqap.access(), tuples).unwrap();
            assert_eq!(
                stored.answer(&request).unwrap(),
                reference.answer(&request).unwrap()
            );
        }
    }

    #[test]
    fn space_accounting_matches_the_source_index() {
        let (_cqap, _pmtds, _, _db, reference) = fixture();
        let dir = scratch_dir("accounting");
        let stored = StoredIndex::spill(&reference, &dir).unwrap();
        // The same intrinsic S on disk as in memory, and only the sparse
        // fence index resident.
        assert_eq!(stored.space_used(), reference.space_used());
        assert!(stored.disk_bytes() > 0);
        assert!(stored.resident_values() < stored.space_used());
        assert!(dir.exists());
        drop(stored);
        assert!(!dir.exists(), "spill dir cleaned up on drop");
    }

    #[test]
    fn empty_request_and_bad_requests_behave_like_the_reference() {
        let (cqap, pmtds, _, db, reference) = fixture();
        let stored = StoredIndex::build_in_temp(&cqap, &db, &pmtds).unwrap();
        let empty = AccessRequest::new(cqap.access(), Vec::new()).unwrap();
        assert_eq!(
            stored.answer(&empty).unwrap(),
            reference.answer(&empty).unwrap()
        );
        let wrong = AccessRequest::single(cqap_common::VarSet::from_iter([0, 1]), &[0, 1]).unwrap();
        assert!(stored.answer(&wrong).is_err());
        assert!(reference.answer(&wrong).is_err());
    }

    #[test]
    fn metrics_sink_counts_store_and_delta_activity() {
        use cqap_delta::{ApplyDelta, DeltaBatch};
        use cqap_obs::{CounterId, MetricsSink, StageId};

        let (cqap, pmtds, g, db, _) = fixture();
        let mut stored = StoredIndex::build_in_temp(&cqap, &db, &pmtds).unwrap();
        let sink = MetricsSink::recording();
        stored.set_metrics_sink(sink.clone());

        // Cold probes: every answered request reads fence segments.
        for (u, v) in graph_pair_requests(&g, 10, 29) {
            let request = AccessRequest::single(cqap.access(), &[u, v]).unwrap();
            stored.answer(&request).unwrap();
        }
        let snap = sink.snapshot().unwrap();
        assert!(snap.counter(CounterId::SegmentReads) > 0);
        assert!(
            snap.counter(CounterId::SegmentBytesRead) >= snap.counter(CounterId::SegmentReads),
            "every segment read is at least one byte"
        );
        assert_eq!(snap.counter(CounterId::OverlayPendingProbes), 0);

        // A fresh chain across the atoms (one new full-join row, so the
        // ΔS-views are non-empty): apply latency, net-op counters and
        // recompiles land in the sink, and the views' overlays hold
        // pending tuples.
        let mut batch = DeltaBatch::new();
        for (i, rel) in db.relations().iter().enumerate() {
            let base = 9_000 + i as u64;
            batch = batch.insert(rel.name().to_string(), vec![Tuple::pair(base, base + 1)]);
        }
        stored.apply_delta(&batch).unwrap();
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.stage(StageId::DeltaApply).count, 1);
        assert_eq!(
            snap.counter(CounterId::DeltaNetInserts),
            db.relations().len() as u64
        );
        assert_eq!(snap.counter(CounterId::DeltaNetDeletes), 0);
        assert!(snap.counter(CounterId::PlanRecompiles) > 0);

        // Probes over the dirty overlay are counted…
        assert!(stored.overlay_len() > 0, "chain insert leaves pending overlay");
        let before = snap.counter(CounterId::OverlayPendingProbes);
        let request = AccessRequest::single(cqap.access(), &[9_000, 9_003]).unwrap();
        assert!(!stored.answer(&request).unwrap().is_empty());
        let snap = sink.snapshot().unwrap();
        assert!(snap.counter(CounterId::OverlayPendingProbes) > before);
        // …and compaction folds them away, recording count and duration.
        stored.compact().unwrap();
        assert_eq!(stored.overlay_len(), 0);
        let snap = sink.snapshot().unwrap();
        assert!(snap.counter(CounterId::Compactions) > 0);
        assert_eq!(
            snap.stage(StageId::Compaction).count,
            snap.counter(CounterId::Compactions)
        );
    }

    #[test]
    fn warm_stored_answers_with_live_sink_stay_allocation_free() {
        use cqap_obs::{CounterId, MetricsSink};

        // Satellite of the probe-only online phase: attaching a *live*
        // recording sink must not reintroduce dedup inserts or tuple
        // boxings on the warm cold-tier path — metrics recording is
        // atomic counters only. (Mirrors the in-memory test in
        // cqap-panda's compiled module.)
        let (cqap, pmtds, g, db, _) = fixture();
        let mut stored = StoredIndex::build_in_temp(&cqap, &db, &pmtds[2..3]).unwrap();
        let sink = MetricsSink::recording();
        stored.set_metrics_sink(sink.clone());
        let requests: Vec<AccessRequest> = graph_pair_requests(&g, 6, 17)
            .into_iter()
            .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).unwrap())
            .collect();
        // Expected answers (interpreted path) computed outside the
        // counted window, and one warm-up pass so every worker-thread
        // segment buffer has grown to its high-water mark.
        let expected: Vec<Relation> = requests
            .iter()
            .map(|r| stored.answer_interpreted(r).unwrap())
            .collect();
        for r in &requests {
            stored.answer(r).unwrap();
        }

        let dedup_before = cqap_relation::instrument::dedup_inserts();
        let boxes_before = cqap_common::tuple::instrument::heap_boxings();
        let answers: Vec<Relation> =
            requests.iter().map(|r| stored.answer(r).unwrap()).collect();
        assert_eq!(
            cqap_relation::instrument::dedup_inserts(),
            dedup_before,
            "warm stored answering with a live sink must perform zero dedup inserts"
        );
        assert_eq!(
            cqap_common::tuple::instrument::heap_boxings(),
            boxes_before,
            "warm stored answering with a live sink must perform zero tuple boxings"
        );
        assert_eq!(answers, expected);
        // The sink really was live for the counted window.
        let snap = sink.snapshot().unwrap();
        assert!(snap.counter(CounterId::SegmentReads) >= 2 * requests.len() as u64);
    }

    #[test]
    fn stored_index_is_shareable_across_threads() {
        let (cqap, pmtds, g, db, reference) = fixture();
        let stored = StoredIndex::build_in_temp(&cqap, &db, &pmtds).unwrap();
        let requests: Vec<AccessRequest> = graph_pair_requests(&g, 30, 41)
            .into_iter()
            .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).unwrap())
            .collect();
        let expected: Vec<Relation> = requests
            .iter()
            .map(|r| reference.answer(r).unwrap())
            .collect();
        let answers = cqap_serve::answer_batch_parallel(&stored, &requests, 4).unwrap();
        assert_eq!(answers, expected);
    }
}
