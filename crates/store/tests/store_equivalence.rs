//! Property test: the storage tier is *exactly* the in-memory index.
//!
//! Across randomized databases, tier splits and zipf-skewed multi-tuple
//! request batches, both a [`StoredIndex`] (every S-view on disk) and a
//! [`TieredShardedIndex`] (every hot/cold shard placement) must answer
//! bit-for-bit identically to the single in-memory [`CqapIndex`] built
//! over the whole database — the acceptance bar for the on-disk format
//! and the placement invariants, mirroring `shard_equivalence.rs` one
//! seam further down. The disk tier runs the v2 delta+varint compressed
//! format, so every case here also checks the compressed footprint
//! undercuts the plain 8-bytes-per-value encoding.

use cqap_common::Tuple;
use cqap_decomp::families::pmtds_3reach_fig1;
use cqap_delta::{ApplyDelta, DeltaBatch};
use cqap_panda::CqapIndex;
use cqap_query::workload::{graph_pair_requests, zipf_multi_requests, Graph};
use cqap_query::AccessRequest;
use cqap_relation::Database;
use cqap_shard::ShardedIndex;
use cqap_store::{scratch_dir, PlacementPolicy, ShardTier, StoredIndex, TieredShardedIndex};
use proptest::prelude::*;

/// One update batch per round, generated against the current database —
/// the same four-round structure as `delta_equivalence.rs` in the
/// yannakakis crate: fresh chain inserts plus scattered deletes, a
/// cancel/no-op round with one real change, an entirely empty batch, and
/// finally deletion of the round-0 chain.
fn delta_round(round: usize, db: &Database, seed: u64) -> DeltaBatch {
    let names: Vec<String> = db.relations().iter().map(|r| r.name().to_string()).collect();
    let base = 20_000 + (seed % 89) * 10;
    match round {
        0 => {
            let mut batch = DeltaBatch::new();
            for (i, name) in names.iter().enumerate() {
                let i = i as u64;
                batch = batch.insert(name.clone(), vec![Tuple::pair(base + i, base + i + 1)]);
                let victims: Vec<Tuple> = db
                    .relation(name)
                    .unwrap()
                    .tuples()
                    .iter()
                    .skip(seed as usize % 4)
                    .step_by(6)
                    .take(4)
                    .cloned()
                    .collect();
                batch = batch.delete(name.clone(), victims);
            }
            batch
        }
        1 => {
            let mut batch = DeltaBatch::new();
            if let Some(t) = db.relation(&names[0]).unwrap().tuples().first().cloned() {
                batch = batch
                    .delete(names[0].clone(), vec![t.clone()])
                    .insert(names[0].clone(), vec![t]);
            }
            batch.insert(
                names[names.len() - 1].clone(),
                vec![Tuple::pair(base + 70, base + 71)],
            )
        }
        2 => DeltaBatch::new(),
        _ => {
            let mut batch = DeltaBatch::new();
            for (i, name) in names.iter().enumerate() {
                let i = i as u64;
                batch = batch.delete(name.clone(), vec![Tuple::pair(base + i, base + i + 1)]);
            }
            batch
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized database: the disk-resident index and every tier split
    /// of a 3-shard deployment answer identically to the reference, for
    /// single-binding requests and zipf multi-tuple batches.
    #[test]
    fn stored_and_tiered_match_in_memory(seed in 0u64..10_000, edges in 60usize..200) {
        let (cqap, pmtds) = pmtds_3reach_fig1().unwrap();
        let graph = Graph::random(40, edges, seed);
        let db = graph.as_path_database(3);
        let reference = CqapIndex::build(&cqap, &db, &pmtds).unwrap();

        let singles: Vec<AccessRequest> = graph_pair_requests(&graph, 10, seed ^ 0x5eed)
            .into_iter()
            .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).unwrap())
            .collect();
        let multis: Vec<AccessRequest> = zipf_multi_requests(&graph, 5, 5, 1.1, seed ^ 0x21f)
            .into_iter()
            .map(|tuples| {
                let tuples: Vec<Tuple> =
                    tuples.into_iter().map(|(u, v)| Tuple::pair(u, v)).collect();
                AccessRequest::new(cqap.access(), tuples).unwrap()
            })
            .collect();

        // Unsharded, fully disk-resident: same intrinsic S, same answers.
        // The six-way check covers the columnar (default), row-compiled
        // and interpreted online paths on *both* backends (hash probes in
        // memory, fence + segment reads with column-direct decode on
        // disk): one equivalence class per request.
        let stored = StoredIndex::build_in_temp(&cqap, &db, &pmtds).unwrap();
        prop_assert_eq!(stored.space_used(), reference.space_used());
        // The v2 delta+varint runs must beat the plain 8-bytes-per-value
        // encoding on every random database, not just the benchmarks.
        prop_assert!(
            stored.disk_bytes() < (stored.space_used() * 8) as u64,
            "compressed runs ({} B) not smaller than plain encoding of {} values",
            stored.disk_bytes(), stored.space_used()
        );
        for request in singles.iter().chain(&multis) {
            let expected = reference.answer(request).unwrap();
            prop_assert_eq!(
                stored.answer(request).unwrap(),
                expected.clone(),
                "columnar StoredIndex diverged"
            );
            prop_assert_eq!(
                stored.answer_rows(request).unwrap(),
                expected.clone(),
                "row-compiled StoredIndex diverged"
            );
            prop_assert_eq!(
                stored.answer_interpreted(request).unwrap(),
                expected.clone(),
                "interpreted StoredIndex diverged"
            );
            prop_assert_eq!(
                reference.answer_rows(request).unwrap(),
                expected.clone(),
                "row-compiled CqapIndex diverged from its columnar path"
            );
            prop_assert_eq!(
                reference.answer_interpreted(request).unwrap(),
                expected,
                "interpreted CqapIndex diverged from its compiled path"
            );
        }

        // Sharded with every hot/cold split of k = 3 (the seed picks the
        // cold subset): 0, 1, 2 and 3 cold shards, placement rotated by
        // the seed so every shard sees both tiers across cases.
        for cold in 0..=3usize {
            let placement: Vec<ShardTier> = (0..3)
                .map(|i| {
                    if (i + seed as usize) % 3 < cold {
                        ShardTier::Cold
                    } else {
                        ShardTier::Hot
                    }
                })
                .collect();
            let sharded = ShardedIndex::build(&cqap, &db, &pmtds, 3).unwrap();
            let tiered = TieredShardedIndex::from_sharded(
                sharded,
                &placement,
                scratch_dir("proptest"),
            )
            .unwrap();
            // Cold shards report their compressed on-disk footprint; it
            // must undercut the logical size of the values they hold.
            let space = tiered.space_used();
            if space.cold_values > 0 {
                prop_assert!(
                    space.cold_disk_bytes < (space.cold_values * 8) as u64,
                    "cold tier not compressed: {} B for {} values",
                    space.cold_disk_bytes, space.cold_values
                );
            } else {
                prop_assert_eq!(space.cold_disk_bytes, 0);
            }
            for request in singles.iter().chain(&multis) {
                prop_assert_eq!(
                    tiered.answer(request).unwrap(),
                    reference.answer(request).unwrap(),
                    "tiered diverged at cold = {} placement {:?}", cold, placement
                );
            }
        }
    }

    /// The budget-driven policy end to end: any hot budget yields a valid
    /// placement whose tiered index is exact, and smaller budgets never
    /// place more shards hot than larger ones.
    #[test]
    fn policy_budgets_stay_exact(seed in 0u64..10_000, budget_kb in 0usize..64) {
        let (cqap, pmtds) = pmtds_3reach_fig1().unwrap();
        let graph = Graph::random(40, 150, seed);
        let db = graph.as_path_database(3);
        let reference = CqapIndex::build(&cqap, &db, &pmtds).unwrap();
        let requests: Vec<AccessRequest> = graph_pair_requests(&graph, 12, seed ^ 0x7ab)
            .into_iter()
            .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).unwrap())
            .collect();

        let spec = cqap_shard::ShardSpec::new(&cqap, 3).unwrap();
        let weights = PlacementPolicy::observe(&spec, &requests);
        let policy = PlacementPolicy::hot_budget(budget_kb * 1024).with_weights(weights);
        let tiered =
            TieredShardedIndex::build_in_temp(&cqap, &db, &pmtds, 3, &policy).unwrap();
        let space = tiered.space_used();
        prop_assert_eq!(space.hot_shards + space.cold_shards, 3);
        for request in &requests {
            prop_assert_eq!(
                tiered.answer(request).unwrap(),
                reference.answer(request).unwrap(),
                "budget {}KiB placement diverged", budget_kb
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Delta segments on the disk tier: a [`StoredIndex`] maintained
    /// through [`ApplyDelta`] — deltas buffered as LSM-style overlay
    /// segments, then folded down by a forced compaction — answers
    /// identically to the incrementally maintained in-memory index *and*
    /// to a fresh rebuild (memory and disk) over the post-delta database.
    /// Eight answer paths per request: columnar / row-compiled /
    /// interpreted on both maintained backends, plus the two rebuilds.
    #[test]
    fn stored_delta_segments_match_incremental_and_rebuild(
        seed in 0u64..10_000,
        edges in 60usize..160,
    ) {
        let (cqap, pmtds) = pmtds_3reach_fig1().unwrap();
        let graph = Graph::random(40, edges, seed);
        let db = graph.as_path_database(3);

        let base = 20_000 + (seed % 89) * 10;
        let mut requests: Vec<AccessRequest> = graph_pair_requests(&graph, 8, seed ^ 0xd17a)
            .into_iter()
            .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).unwrap())
            .collect();
        // A request across the inserted chain: answered in rounds 0-2,
        // empty again after round 3 deletes the chain.
        requests.push(
            AccessRequest::single(cqap.access(), &[base, base + db.num_relations() as u64])
                .unwrap(),
        );

        let mut stored = StoredIndex::build_in_temp(&cqap, &db, &pmtds).unwrap();
        let mut memory = CqapIndex::build(&cqap, &db, &pmtds).unwrap();
        let mut reference_db = db.clone();

        for round in 0..4 {
            let batch = delta_round(round, &reference_db, seed);
            let stored_stats = stored.apply_delta(&batch).unwrap();
            let memory_stats = memory.apply_delta(&batch).unwrap();
            let ref_stats = reference_db.apply_delta(&batch).unwrap();
            prop_assert_eq!(&stored_stats, &ref_stats, "round {}: disk stats diverged", round);
            prop_assert_eq!(&memory_stats, &ref_stats, "round {}: memory stats diverged", round);

            // Round 1 probes with overlay segments still pending; the
            // forced compaction folds them into fresh base runs and the
            // remaining rounds probe the rewritten files.
            if round == 1 {
                stored.compact().unwrap();
                prop_assert_eq!(stored.overlay_len(), 0, "compaction left overlay tuples");
            }

            let rebuilt = CqapIndex::build(&cqap, &reference_db, &pmtds).unwrap();
            let rebuilt_stored =
                StoredIndex::build_in_temp(&cqap, &reference_db, &pmtds).unwrap();
            prop_assert_eq!(
                stored.space_used(),
                rebuilt.space_used(),
                "round {}: maintained disk S-view space diverged from a rebuild", round
            );
            // Compression must survive the full overlay / compaction
            // cycle: base runs rewritten by compaction are still v2.
            prop_assert!(
                stored.disk_bytes() < (stored.space_used() * 8) as u64,
                "round {}: maintained runs ({} B) not smaller than plain encoding",
                round, stored.disk_bytes()
            );
            for request in &requests {
                let expected = rebuilt.answer(request).unwrap();
                prop_assert_eq!(
                    stored.answer(request).unwrap(),
                    expected.clone(),
                    "round {}: columnar stored answer diverged", round
                );
                prop_assert_eq!(
                    stored.answer_rows(request).unwrap(),
                    expected.clone(),
                    "round {}: row-compiled stored answer diverged", round
                );
                prop_assert_eq!(
                    stored.answer_interpreted(request).unwrap(),
                    expected.clone(),
                    "round {}: interpreted stored answer diverged", round
                );
                prop_assert_eq!(
                    memory.answer(request).unwrap(),
                    expected.clone(),
                    "round {}: columnar memory answer diverged", round
                );
                prop_assert_eq!(
                    memory.answer_rows(request).unwrap(),
                    expected.clone(),
                    "round {}: row-compiled memory answer diverged", round
                );
                prop_assert_eq!(
                    memory.answer_interpreted(request).unwrap(),
                    expected.clone(),
                    "round {}: interpreted memory answer diverged", round
                );
                prop_assert_eq!(
                    rebuilt_stored.answer(request).unwrap(),
                    expected,
                    "round {}: rebuilt stored answer diverged", round
                );
            }
        }
    }

    /// The fourth backend: every hot/cold split of a 3-shard tiered
    /// deployment absorbs a delta batch through [`ApplyDelta`] and keeps
    /// answering exactly like the maintained unsharded in-memory index;
    /// post-delta, the placement policy re-scores the grown shards.
    #[test]
    fn tiered_deltas_match_unsharded_incremental(seed in 0u64..10_000, edges in 60usize..140) {
        let (cqap, pmtds) = pmtds_3reach_fig1().unwrap();
        let graph = Graph::random(40, edges, seed);
        let db = graph.as_path_database(3);
        let batch = delta_round(0, &db, seed);

        let base = 20_000 + (seed % 89) * 10;
        let mut requests: Vec<AccessRequest> = graph_pair_requests(&graph, 8, seed ^ 0x71e2)
            .into_iter()
            .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).unwrap())
            .collect();
        requests.push(
            AccessRequest::single(cqap.access(), &[base, base + db.num_relations() as u64])
                .unwrap(),
        );

        let mut reference = CqapIndex::build(&cqap, &db, &pmtds).unwrap();
        reference.apply_delta(&batch).unwrap();

        for cold in 0..=3usize {
            let placement: Vec<ShardTier> = (0..3)
                .map(|i| {
                    if (i + seed as usize) % 3 < cold {
                        ShardTier::Cold
                    } else {
                        ShardTier::Hot
                    }
                })
                .collect();
            let sharded = ShardedIndex::build(&cqap, &db, &pmtds, 3).unwrap();
            let mut tiered = TieredShardedIndex::from_sharded(
                sharded,
                &placement,
                scratch_dir("delta-proptest"),
            )
            .unwrap();
            tiered.apply_delta(&batch).unwrap();
            for request in &requests {
                prop_assert_eq!(
                    tiered.answer(request).unwrap(),
                    reference.answer(request).unwrap(),
                    "cold = {} placement {:?}", cold, placement
                );
            }
            // Re-scoring over the post-delta shard sizes: an unbounded
            // budget pulls every shard hot, a zero budget evicts all.
            let bytes = tiered.shard_bytes();
            prop_assert_eq!(bytes.len(), 3);
            let all_hot = tiered.replan(&PlacementPolicy::hot_budget(usize::MAX));
            prop_assert!(all_hot.iter().all(|t| matches!(t, ShardTier::Hot)));
            let all_cold = tiered.replan(&PlacementPolicy::hot_budget(0));
            prop_assert!(all_cold.iter().all(|t| matches!(t, ShardTier::Cold)));
        }
    }
}
