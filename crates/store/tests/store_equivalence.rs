//! Property test: the storage tier is *exactly* the in-memory index.
//!
//! Across randomized databases, tier splits and zipf-skewed multi-tuple
//! request batches, both a [`StoredIndex`] (every S-view on disk) and a
//! [`TieredShardedIndex`] (every hot/cold shard placement) must answer
//! bit-for-bit identically to the single in-memory [`CqapIndex`] built
//! over the whole database — the acceptance bar for the on-disk format
//! and the placement invariants, mirroring `shard_equivalence.rs` one
//! seam further down.

use cqap_common::Tuple;
use cqap_decomp::families::pmtds_3reach_fig1;
use cqap_panda::CqapIndex;
use cqap_query::workload::{graph_pair_requests, zipf_multi_requests, Graph};
use cqap_query::AccessRequest;
use cqap_shard::ShardedIndex;
use cqap_store::{scratch_dir, PlacementPolicy, ShardTier, StoredIndex, TieredShardedIndex};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized database: the disk-resident index and every tier split
    /// of a 3-shard deployment answer identically to the reference, for
    /// single-binding requests and zipf multi-tuple batches.
    #[test]
    fn stored_and_tiered_match_in_memory(seed in 0u64..10_000, edges in 60usize..200) {
        let (cqap, pmtds) = pmtds_3reach_fig1().unwrap();
        let graph = Graph::random(40, edges, seed);
        let db = graph.as_path_database(3);
        let reference = CqapIndex::build(&cqap, &db, &pmtds).unwrap();

        let singles: Vec<AccessRequest> = graph_pair_requests(&graph, 10, seed ^ 0x5eed)
            .into_iter()
            .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).unwrap())
            .collect();
        let multis: Vec<AccessRequest> = zipf_multi_requests(&graph, 5, 5, 1.1, seed ^ 0x21f)
            .into_iter()
            .map(|tuples| {
                let tuples: Vec<Tuple> =
                    tuples.into_iter().map(|(u, v)| Tuple::pair(u, v)).collect();
                AccessRequest::new(cqap.access(), tuples).unwrap()
            })
            .collect();

        // Unsharded, fully disk-resident: same intrinsic S, same answers.
        // The six-way check covers the columnar (default), row-compiled
        // and interpreted online paths on *both* backends (hash probes in
        // memory, fence + segment reads with column-direct decode on
        // disk): one equivalence class per request.
        let stored = StoredIndex::build_in_temp(&cqap, &db, &pmtds).unwrap();
        prop_assert_eq!(stored.space_used(), reference.space_used());
        for request in singles.iter().chain(&multis) {
            let expected = reference.answer(request).unwrap();
            prop_assert_eq!(
                stored.answer(request).unwrap(),
                expected.clone(),
                "columnar StoredIndex diverged"
            );
            prop_assert_eq!(
                stored.answer_rows(request).unwrap(),
                expected.clone(),
                "row-compiled StoredIndex diverged"
            );
            prop_assert_eq!(
                stored.answer_interpreted(request).unwrap(),
                expected.clone(),
                "interpreted StoredIndex diverged"
            );
            prop_assert_eq!(
                reference.answer_rows(request).unwrap(),
                expected.clone(),
                "row-compiled CqapIndex diverged from its columnar path"
            );
            prop_assert_eq!(
                reference.answer_interpreted(request).unwrap(),
                expected,
                "interpreted CqapIndex diverged from its compiled path"
            );
        }

        // Sharded with every hot/cold split of k = 3 (the seed picks the
        // cold subset): 0, 1, 2 and 3 cold shards, placement rotated by
        // the seed so every shard sees both tiers across cases.
        for cold in 0..=3usize {
            let placement: Vec<ShardTier> = (0..3)
                .map(|i| {
                    if (i + seed as usize) % 3 < cold {
                        ShardTier::Cold
                    } else {
                        ShardTier::Hot
                    }
                })
                .collect();
            let sharded = ShardedIndex::build(&cqap, &db, &pmtds, 3).unwrap();
            let tiered = TieredShardedIndex::from_sharded(
                sharded,
                &placement,
                scratch_dir("proptest"),
            )
            .unwrap();
            for request in singles.iter().chain(&multis) {
                prop_assert_eq!(
                    tiered.answer(request).unwrap(),
                    reference.answer(request).unwrap(),
                    "tiered diverged at cold = {} placement {:?}", cold, placement
                );
            }
        }
    }

    /// The budget-driven policy end to end: any hot budget yields a valid
    /// placement whose tiered index is exact, and smaller budgets never
    /// place more shards hot than larger ones.
    #[test]
    fn policy_budgets_stay_exact(seed in 0u64..10_000, budget_kb in 0usize..64) {
        let (cqap, pmtds) = pmtds_3reach_fig1().unwrap();
        let graph = Graph::random(40, 150, seed);
        let db = graph.as_path_database(3);
        let reference = CqapIndex::build(&cqap, &db, &pmtds).unwrap();
        let requests: Vec<AccessRequest> = graph_pair_requests(&graph, 12, seed ^ 0x7ab)
            .into_iter()
            .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).unwrap())
            .collect();

        let spec = cqap_shard::ShardSpec::new(&cqap, 3).unwrap();
        let weights = PlacementPolicy::observe(&spec, &requests);
        let policy = PlacementPolicy::hot_budget(budget_kb * 1024).with_weights(weights);
        let tiered =
            TieredShardedIndex::build_in_temp(&cqap, &db, &pmtds, 3, &policy).unwrap();
        let space = tiered.space_used();
        prop_assert_eq!(space.hot_shards + space.cold_shards, 3);
        for request in &requests {
            prop_assert_eq!(
                tiered.answer(request).unwrap(),
                reference.answer(request).unwrap(),
                "budget {}KiB placement diverged", budget_kb
            );
        }
    }
}
