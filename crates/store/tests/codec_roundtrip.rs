//! Codec-level property test for the v2 compressed run format.
//!
//! `store_equivalence.rs` exercises the format through whole indexes over
//! graph workloads; this file attacks the codec directly: random
//! relations of every arity (1 up to 7), every link subset (empty, full,
//! scattered), and value mixes that force every varint length class —
//! zero, `u64::MAX`, both sides of each 7-bit boundary — must round-trip
//! through `write_view` → [`StoredView::open`] and answer both the
//! row-probe and the column-direct probe exactly like a
//! [`cqap_relation::HashIndex`] over the same tuples. Wide-value cases
//! make every key distinct, so single-tuple records and single-record
//! segments are covered, as are max-arity tuples where *all* columns are
//! link columns and the blocks store nothing at all.

use cqap_common::{Tuple, Val, VarSet};
use cqap_relation::{HashIndex, Relation, Schema};
use cqap_store::format::write_view;
use cqap_store::{scratch_dir, StoredView};
use cqap_yannakakis::ColumnRun;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Values spanning every LEB128 length class plus the extremes; the
/// `small` palette keeps keys dense (multi-tuple records, short deltas),
/// the `wide` palette makes collisions vanishingly rare (single-tuple
/// records) and deltas sign-alternating.
const WIDE_PALETTE: [Val; 10] = [
    0,
    1,
    0x7f,
    0x80,
    0x3fff,
    0x4000,
    1 << 32,
    (1 << 62) + 3,
    u64::MAX - 1,
    u64::MAX,
];

fn draw_val(rng: &mut StdRng, wide: bool) -> Val {
    if wide {
        WIDE_PALETTE[rng.random_range(0..WIDE_PALETTE.len())]
            .wrapping_add(rng.random_range(0u64..3))
    } else {
        rng.random_range(0u64..24)
    }
}

fn sorted(mut tuples: Vec<Tuple>) -> Vec<Tuple> {
    tuples.sort_unstable_by(|a, b| a.as_slice().cmp(b.as_slice()));
    tuples
}

/// `out`'s rows as sorted tuples (the column-direct probe appends in
/// block order; comparisons are order-insensitive).
fn rows_of(out: &ColumnRun) -> Vec<Tuple> {
    let mut buf = Vec::new();
    let tuples = (0..out.rows())
        .map(|r| {
            out.row_into(r, &mut buf);
            Tuple::from_slice(&buf)
        })
        .collect();
    sorted(tuples)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any relation, any arity, any link subset: the compressed run
    /// answers row probes, column probes and key-existence checks exactly
    /// like a hash index over the same tuples.
    #[test]
    fn arbitrary_relations_round_trip(
        seed in 0u64..1_000_000,
        arity in 1usize..8,
        rows in 0usize..120,
        link_bits in 0u64..256,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc0dec);
        // Wide values: almost-always-distinct keys, so every record holds
        // one tuple and short relations fit a single segment.
        let wide = seed % 3 == 0;
        let link = VarSet(link_bits & ((1u64 << arity) - 1));

        let mut buf = vec![0u64; arity];
        let tuples: Vec<Tuple> = (0..rows)
            .map(|_| {
                for v in &mut buf {
                    *v = draw_val(&mut rng, wide);
                }
                Tuple::from_slice(&buf)
            })
            .collect();
        let rel = Relation::from_tuples("P", Schema::of(0..arity), tuples).unwrap();

        let dir = scratch_dir("codec-proptest");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("case-{seed}-{arity}-{rows}-{link_bits}.sview"));
        write_view(&path, &rel, link).unwrap();
        let view = StoredView::open(&path).unwrap();
        prop_assert_eq!(view.len(), rel.len());
        prop_assert_eq!(view.stored_values(), rel.stored_values());
        prop_assert_eq!(view.schema(), rel.schema());

        let index = HashIndex::build(&rel, link).unwrap();
        // Probe every present key plus fresh misses drawn from the same
        // distribution (and a guaranteed-absent extreme).
        let key_positions = rel.schema().positions_of_set(link).unwrap();
        let mut keys: Vec<Tuple> = rel
            .iter()
            .map(|t| t.project(&key_positions))
            .collect();
        let key_arity = link.len();
        let mut miss = vec![0u64; key_arity];
        for _ in 0..8 {
            for v in &mut miss {
                *v = draw_val(&mut rng, wide);
            }
            keys.push(Tuple::from_slice(&miss));
        }

        let mut cols = ColumnRun::new();
        for key in &keys {
            let expected = sorted(index.probe(key).to_vec());
            prop_assert_eq!(
                sorted(view.probe(key).unwrap()),
                expected.clone(),
                "row probe diverged at key {:?}", key
            );
            cols.reset(arity);
            view.probe_columns(key, &mut cols).unwrap();
            prop_assert_eq!(
                rows_of(&cols),
                expected.clone(),
                "column probe diverged at key {:?}", key
            );
            prop_assert_eq!(
                view.contains_key(key).unwrap(),
                !expected.is_empty(),
                "contains_key diverged at key {:?}", key
            );
        }
        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_dir(&dir);
    }
}
