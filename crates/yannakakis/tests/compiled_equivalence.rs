//! Property test: the compiled probe plans answer *exactly* like the
//! interpreted Online Yannakakis and the naive from-scratch evaluator.
//!
//! Across randomized databases, every PMTD of several query families
//! (covering different access patterns, S/T mixes and tree shapes),
//! single-binding and multi-tuple requests, the four evaluation paths —
//! naive join, the interpreted online phase, the row-compiled plan, and
//! the **columnar** plan over struct-of-arrays scratch — must be
//! bit-for-bit identical. This is the acceptance bar for the zero-copy
//! and columnar refactors: compiled plans are an *optimization*, never a
//! semantics change.

use cqap_common::Tuple;
use cqap_decomp::{families as pmtd_families, Pmtd};
use cqap_query::workload::{graph_pair_requests, zipf_multi_requests, Graph};
use cqap_query::{AccessRequest, Cqap};
use cqap_relation::{Database, Relation, Schema};
use cqap_yannakakis::naive::{full_join, naive_answer};
use cqap_yannakakis::{ColumnarScratch, OnlineYannakakis, PlanScratch, PreprocessedViews};
use proptest::prelude::*;

/// Ideal view contents from the full join, as in the paper's
/// preprocessing contract.
fn views_from_full_join(
    pmtd: &Pmtd,
    cqap: &Cqap,
    db: &Database,
) -> (PreprocessedViews, Vec<(usize, Relation)>) {
    let full = full_join(cqap, db).unwrap();
    let oy = OnlineYannakakis::new(pmtd.clone());
    let mut s_views = Vec::new();
    let mut t_views = Vec::new();
    for t in 0..pmtd.td().num_nodes() {
        let rel = full.project_onto(pmtd.view_schema(t)).unwrap();
        if pmtd.is_materialized(t) {
            s_views.push((t, rel));
        } else {
            t_views.push((t, rel));
        }
    }
    (oy.preprocess(&s_views).unwrap(), t_views)
}

/// Checks naive ≡ interpreted ≡ row-compiled ≡ columnar for every PMTD of
/// the family on every request.
fn check_family(
    cqap: &Cqap,
    pmtds: &[Pmtd],
    db: &Database,
    requests: &[AccessRequest],
    scratch: &mut PlanScratch,
    columnar: &mut ColumnarScratch,
) {
    for pmtd in pmtds {
        let oy = OnlineYannakakis::new(pmtd.clone());
        let (pre, t_views) = views_from_full_join(pmtd, cqap, db);
        let t_schemas: Vec<(usize, Schema)> = t_views
            .iter()
            .map(|(n, r)| (*n, r.schema().clone()))
            .collect();
        let t_refs: Vec<(usize, &Relation)> =
            t_views.iter().map(|(n, r)| (*n, r)).collect();
        let plan = oy.compile(&pre, &t_schemas).unwrap();
        for request in requests {
            let naive = naive_answer(cqap, db, request).unwrap();
            let interpreted = oy.answer(&pre, &t_views, request).unwrap();
            let compiled = plan.answer_with(&pre, &t_refs, request, scratch).unwrap();
            let columnar_ans = plan
                .answer_columnar(&pre, &t_refs, request, columnar)
                .unwrap();
            assert_eq!(
                interpreted,
                naive,
                "interpreted diverged from naive on {}",
                pmtd.summary()
            );
            assert_eq!(
                compiled,
                interpreted,
                "compiled diverged from interpreted on {}",
                pmtd.summary()
            );
            assert_eq!(
                columnar_ans,
                interpreted,
                "columnar diverged from interpreted on {}",
                pmtd.summary()
            );
        }
    }
}

fn requests_for(cqap: &Cqap, graph: &Graph, seed: u64) -> Vec<AccessRequest> {
    let mut requests: Vec<AccessRequest> = graph_pair_requests(graph, 8, seed)
        .into_iter()
        .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).unwrap())
        .collect();
    for tuples in zipf_multi_requests(graph, 3, 5, 1.1, seed ^ 0xfeed) {
        let tuples: Vec<Tuple> = tuples.into_iter().map(|(u, v)| Tuple::pair(u, v)).collect();
        requests.push(AccessRequest::new(cqap.access(), tuples).unwrap());
    }
    // Duplicate bindings inside one request must dedup identically.
    if let Some(first) = requests.first().cloned() {
        let mut doubled = first.tuples().to_vec();
        doubled.extend_from_slice(first.tuples());
        requests.push(AccessRequest::new(cqap.access(), doubled).unwrap());
    }
    requests
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// All five 3-reachability PMTDs (pure-T, mixed ST and pure-S plans
    /// over the access pattern (x1, x4)).
    #[test]
    fn three_reach_compiled_equivalence(seed in 0u64..10_000, edges in 50usize..220) {
        let (cqap, pmtds) = pmtd_families::pmtds_3reach_all().unwrap();
        let graph = Graph::random(35, edges, seed);
        let db = graph.as_path_database(3);
        let requests = requests_for(&cqap, &graph, seed ^ 0x51ed);
        let mut scratch = PlanScratch::new();
        let mut columnar = ColumnarScratch::new();
        check_family(&cqap, &pmtds, &db, &requests, &mut scratch, &mut columnar);
    }

    /// 2-reachability: a different access pattern and bag structure.
    #[test]
    fn two_reach_compiled_equivalence(seed in 0u64..10_000, edges in 40usize..200) {
        let (cqap, pmtds) = pmtd_families::pmtds_2reach().unwrap();
        let graph = Graph::random(30, edges, seed);
        let db = graph.as_path_database(2);
        let requests = requests_for(&cqap, &graph, seed ^ 0x2bad);
        let mut scratch = PlanScratch::new();
        let mut columnar = ColumnarScratch::new();
        check_family(&cqap, &pmtds, &db, &requests, &mut scratch, &mut columnar);
    }

    /// The square (cyclic) query: four atoms over one edge relation.
    #[test]
    fn square_compiled_equivalence(seed in 0u64..10_000, edges in 40usize..140) {
        let (cqap, pmtds) = pmtd_families::pmtds_square().unwrap();
        let graph = Graph::random(22, edges, seed);
        let mut db = Database::new();
        for i in 1..=4 {
            db.add_relation(Relation::binary(
                format!("R{i}"),
                0,
                1,
                graph.edges.iter().copied(),
            ))
            .unwrap();
        }
        let requests = requests_for(&cqap, &graph, seed ^ 0x4u64);
        let mut scratch = PlanScratch::new();
        let mut columnar = ColumnarScratch::new();
        check_family(&cqap, &pmtds, &db, &requests, &mut scratch, &mut columnar);
    }
}
