//! Property test: incremental maintenance is *exactly* a rebuild.
//!
//! Across randomized databases and randomized insert/delete streams —
//! including delete-then-reinsert, inserts of already-present tuples,
//! deletes of absent tuples and entirely empty batches — a [`CqapIndex`]
//! maintained in place through the [`ApplyDelta`] seam must answer
//! bit-for-bit identically to an index rebuilt from scratch over the
//! post-delta database, on every evaluation path (columnar, row-compiled
//! and interpreted), for all three query families of
//! `compiled_equivalence.rs`. The S-view space must match the rebuild
//! too: incremental maintenance may not leak or drop view tuples.

use cqap_common::Tuple;
use cqap_decomp::families as pmtd_families;
use cqap_delta::{ApplyDelta, DeltaBatch};
use cqap_panda::CqapIndex;
use cqap_query::workload::{graph_pair_requests, zipf_multi_requests, Graph};
use cqap_query::{AccessRequest, Cqap};
use cqap_relation::{Database, Relation};
use proptest::prelude::*;

/// The chain base vertex for inserted tuples: far outside any generated
/// graph, so chain inserts are guaranteed fresh.
fn chain_base(seed: u64) -> u64 {
    10_000 + (seed % 97) * 10
}

/// One update batch, generated against the *current* database state so
/// the intended no-op / cancellation structure actually holds:
///
/// * round 0 — inserts a fresh "chain" tuple into every relation (for a
///   path query this creates brand-new answers) and deletes a few
///   existing tuples per relation;
/// * round 1 — delete-then-reinsert of an existing tuple (nets out),
///   an insert of an already-present tuple and a delete of an absent
///   tuple (both no-ops), plus one real insert;
/// * round 2 — an entirely empty batch;
/// * round 3 — deletes the chain inserted in round 0 (removing the
///   answers it created).
fn make_batch(round: usize, db: &Database, seed: u64) -> DeltaBatch {
    let names: Vec<String> = db.relations().iter().map(|r| r.name().to_string()).collect();
    let base = chain_base(seed);
    match round {
        0 => {
            let mut batch = DeltaBatch::new();
            for (i, name) in names.iter().enumerate() {
                let i = i as u64;
                batch = batch.insert(name.clone(), vec![Tuple::pair(base + i, base + i + 1)]);
                let victims: Vec<Tuple> = db
                    .relation(name)
                    .unwrap()
                    .tuples()
                    .iter()
                    .skip(seed as usize % 3)
                    .step_by(5)
                    .take(3)
                    .cloned()
                    .collect();
                batch = batch.delete(name.clone(), victims);
            }
            batch
        }
        1 => {
            let mut batch = DeltaBatch::new();
            let first_rel = &names[0];
            if let Some(t) = db.relation(first_rel).unwrap().tuples().first().cloned() {
                // Cancels out entirely…
                batch = batch
                    .delete(first_rel.clone(), vec![t.clone()])
                    .insert(first_rel.clone(), vec![t.clone()]);
                // …and inserting a present tuple is a no-op.
                batch = batch.insert(first_rel.clone(), vec![t]);
            }
            // Deleting an absent tuple is a no-op.
            batch = batch.delete(first_rel.clone(), vec![Tuple::pair(999_983, 999_983)]);
            // One real change so the batch is not a pure no-op.
            batch.insert(
                names[names.len() - 1].clone(),
                vec![Tuple::pair(base + 50, base + 51)],
            )
        }
        2 => DeltaBatch::new(),
        _ => {
            let mut batch = DeltaBatch::new();
            for (i, name) in names.iter().enumerate() {
                let i = i as u64;
                batch = batch.delete(name.clone(), vec![Tuple::pair(base + i, base + i + 1)]);
            }
            batch
        }
    }
}

fn requests_for(cqap: &Cqap, graph: &Graph, seed: u64) -> Vec<AccessRequest> {
    let mut requests: Vec<AccessRequest> = graph_pair_requests(graph, 6, seed)
        .into_iter()
        .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).unwrap())
        .collect();
    for tuples in zipf_multi_requests(graph, 2, 5, 1.1, seed ^ 0xfeed) {
        let tuples: Vec<Tuple> = tuples.into_iter().map(|(u, v)| Tuple::pair(u, v)).collect();
        requests.push(AccessRequest::new(cqap.access(), tuples).unwrap());
    }
    requests
}

/// Runs four update rounds, comparing the incrementally maintained index
/// against a fresh rebuild over the reference database after each round.
fn check_family(
    cqap: &Cqap,
    pmtds: &[cqap_decomp::Pmtd],
    db: &Database,
    graph: &Graph,
    seed: u64,
) {
    let mut requests = requests_for(cqap, graph, seed ^ 0xde17a);
    // A request that crosses the inserted chain: its answer appears in
    // round 0 and disappears again in round 3.
    let base = chain_base(seed);
    requests.push(
        AccessRequest::single(cqap.access(), &[base, base + db.num_relations() as u64])
            .unwrap(),
    );

    let mut incremental = CqapIndex::build(cqap, db, pmtds).unwrap();
    let mut reference_db = db.clone();
    for round in 0..4 {
        let batch = make_batch(round, &reference_db, seed);
        let inc_stats = incremental.apply_delta(&batch).unwrap();
        let ref_stats = reference_db.apply_delta(&batch).unwrap();
        assert_eq!(
            inc_stats, ref_stats,
            "round {round}: index and reference database disagree on the net effect"
        );
        let rebuilt = CqapIndex::build(cqap, &reference_db, pmtds).unwrap();
        assert_eq!(
            incremental.space_used(),
            rebuilt.space_used(),
            "round {round}: incremental S-view space diverged from a rebuild"
        );
        for request in &requests {
            let expected = rebuilt.answer(request).unwrap();
            assert_eq!(
                incremental.answer(request).unwrap(),
                expected,
                "round {round}: columnar answer diverged from rebuild"
            );
            assert_eq!(
                incremental.answer_rows(request).unwrap(),
                expected,
                "round {round}: row-compiled answer diverged from rebuild"
            );
            assert_eq!(
                incremental.answer_interpreted(request).unwrap(),
                expected,
                "round {round}: interpreted answer diverged from rebuild"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// All five 3-reachability PMTDs under random insert/delete streams.
    #[test]
    fn three_reach_delta_equivalence(seed in 0u64..10_000, edges in 50usize..180) {
        let (cqap, pmtds) = pmtd_families::pmtds_3reach_all().unwrap();
        let graph = Graph::random(35, edges, seed);
        let db = graph.as_path_database(3);
        check_family(&cqap, &pmtds, &db, &graph, seed);
    }

    /// 2-reachability: a different access pattern and bag structure.
    #[test]
    fn two_reach_delta_equivalence(seed in 0u64..10_000, edges in 40usize..160) {
        let (cqap, pmtds) = pmtd_families::pmtds_2reach().unwrap();
        let graph = Graph::random(30, edges, seed);
        let db = graph.as_path_database(2);
        check_family(&cqap, &pmtds, &db, &graph, seed);
    }

    /// The square (cyclic) query: four atoms over one edge relation.
    #[test]
    fn square_delta_equivalence(seed in 0u64..10_000, edges in 40usize..120) {
        let (cqap, pmtds) = pmtd_families::pmtds_square().unwrap();
        let graph = Graph::random(22, edges, seed);
        let mut db = Database::new();
        for i in 1..=4 {
            db.add_relation(Relation::binary(
                format!("R{i}"),
                0,
                1,
                graph.edges.iter().copied(),
            ))
            .unwrap();
        }
        check_family(&cqap, &pmtds, &db, &graph, seed);
    }
}
