//! Online Yannakakis for PMTDs (Section 3.1 / Appendix A).
//!
//! The algorithm answers an access request from a PMTD's views in two
//! passes:
//!
//! 1. a **bottom-up semijoin-reduce pass** that removes dangling tuples from
//!    the T-views and the access request — S-views are only ever *probed*
//!    (via indexes built once during preprocessing), never scanned, which is
//!    what makes the online time independent of the S-view sizes
//!    (Theorem 3.7);
//! 2. a **top-down join pass** over the reduced tree that assembles the
//!    output without producing dangling intermediate tuples.

use cqap_common::{CqapError, FxHashMap, FxHashSet, Result, Tuple, VarSet};
use cqap_decomp::{Pmtd, ViewKind};
use cqap_query::AccessRequest;
use cqap_relation::{HashIndex, Relation, Schema};

/// The preprocessed (materialized) S-views of a PMTD: each S-view is stored
/// together with a hash index keyed on its *link* variables — the variables
/// it shares with its parent (for the root: with the access pattern).
#[derive(Clone, Debug)]
pub struct PreprocessedViews {
    views: Vec<Option<SView>>,
}

#[derive(Clone, Debug)]
struct SView {
    rel: Relation,
    index: HashIndex,
    link: VarSet,
}

impl PreprocessedViews {
    /// Total number of stored values across all S-views — the
    /// machine-independent space measure reported by the benchmarks (the
    /// paper's intrinsic space cost `S`).
    pub fn stored_values(&self) -> usize {
        self.views
            .iter()
            .flatten()
            .map(|v| v.rel.stored_values())
            .sum()
    }

    /// Number of materialized views.
    pub fn num_views(&self) -> usize {
        self.views.iter().flatten().count()
    }

    /// The materialized relation for a node, if any.
    pub fn view(&self, node: usize) -> Option<&Relation> {
        self.views.get(node).and_then(|v| v.as_ref()).map(|v| &v.rel)
    }

    /// Iterates `(node, reduced S-view, link variables)` over the
    /// materialized nodes — the exact content-plus-key layout a second
    /// storage tier (e.g. the disk backend in `cqap-store`) has to
    /// replicate to answer through [`SViewProbe`].
    pub fn materialized(&self) -> impl Iterator<Item = (usize, &Relation, VarSet)> + '_ {
        self.views
            .iter()
            .enumerate()
            .filter_map(|(node, v)| v.as_ref().map(|v| (node, &v.rel, v.link)))
    }

    fn sview(&self, node: usize) -> Result<&SView> {
        self.views
            .get(node)
            .and_then(|v| v.as_ref())
            .ok_or_else(|| {
                CqapError::InvalidPmtd(format!("S-view {node} was not preprocessed"))
            })
    }

    /// Applies a net ΔS-view to one materialized node in place: `deletes`
    /// leave the stored relation and its link-variable hash index,
    /// `inserts` enter both. The caller (the delta-maintenance layer in
    /// `cqap-panda`) computes the net lists against the view's ideal
    /// content, so deletes are present and inserts absent; duplicates are
    /// tolerated (the relation's set semantics absorbs them and the index
    /// is only updated for tuples that actually entered).
    ///
    /// # Errors
    /// Fails if the node has no materialized view or a tuple's arity does
    /// not match the view schema.
    pub fn apply_delta(
        &mut self,
        node: usize,
        inserts: &[Tuple],
        deletes: &[Tuple],
    ) -> Result<()> {
        let view = self
            .views
            .get_mut(node)
            .and_then(|v| v.as_mut())
            .ok_or_else(|| {
                CqapError::InvalidPmtd(format!("S-view {node} was not preprocessed"))
            })?;
        if !deletes.is_empty() {
            let gone: FxHashSet<Tuple> = deletes.iter().cloned().collect();
            view.rel.remove_all(&gone);
            view.index.remove_all(deletes)?;
        }
        for t in inserts {
            if view.rel.insert(t.clone())? {
                view.index.insert_all(std::slice::from_ref(t))?;
            }
        }
        Ok(())
    }
}

/// Probe-only access to the materialized S-views of one PMTD.
///
/// This is the storage seam of the online phase: Online Yannakakis never
/// scans an S-view, it only (a) asks whether some tuple matches a key over
/// the view's *link* variables (a semijoin probe) and (b) fetches the block
/// of tuples matching a key (a join probe). Anything that can serve those
/// two lookups — the in-memory [`PreprocessedViews`] hash indexes, or a
/// disk-resident sorted run with a fence index — can sit behind
/// [`OnlineYannakakis::answer_with`] and produce identical answers.
///
/// Keys are the projection of a view tuple onto its link variables, in
/// ascending variable order (the [`cqap_relation::HashIndex`] convention).
pub trait SViewProbe {
    /// The schema of the stored view at `node`, or `None` if the node has
    /// no materialized view.
    fn schema(&self, node: usize) -> Option<&Schema>;

    /// Appends all stored tuples of `node`'s view whose link-variable
    /// projection equals `key` to `out` (which is *not* cleared, so callers
    /// can pool several probes in one buffer).
    ///
    /// This is the borrowing entry point of the storage seam: the caller
    /// owns the destination, so a backend never allocates a fresh vector
    /// per probe — the in-memory indexes copy out of their buckets, the
    /// disk backend decodes out of a reused segment buffer.
    ///
    /// # Errors
    /// Fails if the node has no stored view, or on a storage-level fault
    /// (e.g. an I/O error in a disk backend).
    fn probe_into(&self, node: usize, key: &Tuple, out: &mut Vec<Tuple>) -> Result<()>;

    /// Appends all stored tuples of `node`'s view whose link-variable
    /// projection equals `key` to the columns of `out` (which must already
    /// be reset to the view's arity and is *not* cleared, so the columnar
    /// execution path pools several probes in one run).
    ///
    /// This is the column-writing entry point of the storage seam: the
    /// in-memory indexes scatter their bucket slices column-wise, the disk
    /// backend decodes its little-endian segments straight into the
    /// columns — in both cases probe results reach the columnar executor
    /// without ever materializing a row [`Tuple`]. The default
    /// implementation is a row-based fallback over
    /// [`SViewProbe::probe_into`] for backends that have not been
    /// columnarized.
    ///
    /// # Errors
    /// Same failure modes as [`SViewProbe::probe_into`].
    fn probe_columns(
        &self,
        node: usize,
        key: &Tuple,
        out: &mut crate::columnar::ColumnRun,
    ) -> Result<()> {
        let mut rows = Vec::new();
        self.probe_into(node, key, &mut rows)?;
        out.extend_from_tuples(&rows);
        Ok(())
    }

    /// All stored tuples of `node`'s view whose link-variable projection
    /// equals `key`, as a fresh vector. Convenience wrapper over
    /// [`SViewProbe::probe_into`] for callers off the hot path.
    ///
    /// # Errors
    /// Same failure modes as [`SViewProbe::probe_into`].
    fn probe(&self, node: usize, key: &Tuple) -> Result<Vec<Tuple>> {
        let mut out = Vec::new();
        self.probe_into(node, key, &mut out)?;
        Ok(out)
    }

    /// Whether any stored tuple of `node`'s view matches `key` on the link
    /// variables.
    ///
    /// # Errors
    /// Same failure modes as [`SViewProbe::probe_into`].
    fn contains(&self, node: usize, key: &Tuple) -> Result<bool> {
        Ok(!self.probe(node, key)?.is_empty())
    }
}

/// The in-memory backend: probes are O(1) hash lookups that copy the
/// matching bucket into the caller's buffer — the bucket itself is never
/// cloned into a fresh allocation.
impl SViewProbe for PreprocessedViews {
    fn schema(&self, node: usize) -> Option<&Schema> {
        self.views
            .get(node)
            .and_then(|v| v.as_ref())
            .map(|v| v.rel.schema())
    }

    fn probe_into(&self, node: usize, key: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        out.extend_from_slice(self.sview(node)?.index.probe(key));
        Ok(())
    }

    /// The matching bucket slice is scattered column-wise — no row tuple
    /// is built or cloned.
    fn probe_columns(
        &self,
        node: usize,
        key: &Tuple,
        out: &mut crate::columnar::ColumnRun,
    ) -> Result<()> {
        out.extend_from_tuples(self.sview(node)?.index.probe(key));
        Ok(())
    }

    fn contains(&self, node: usize, key: &Tuple) -> Result<bool> {
        Ok(self.sview(node)?.index.contains_key(key))
    }
}

/// Online Yannakakis over one PMTD.
#[derive(Clone, Debug)]
pub struct OnlineYannakakis {
    pmtd: Pmtd,
}

impl OnlineYannakakis {
    /// Creates the evaluator for a non-redundant PMTD.
    pub fn new(pmtd: Pmtd) -> Self {
        OnlineYannakakis { pmtd }
    }

    /// The PMTD this evaluator answers from.
    pub fn pmtd(&self) -> &Pmtd {
        &self.pmtd
    }

    /// The link variables of a node: the view variables shared with the
    /// parent's view (for the root, with the access pattern).
    pub(crate) fn link(&self, node: usize) -> VarSet {
        let mine = self.pmtd.view_schema(node);
        match self.pmtd.td().parent(node) {
            Some(p) => mine.intersect(self.pmtd.td().bag(p)),
            None => mine.intersect(self.pmtd.access()),
        }
    }

    /// Preprocessing phase: takes the content of every S-view (one relation
    /// per materialized node, over exactly the view schema `ν(t)`), runs the
    /// bottom-up semijoin-reduce over SS-edges, and builds one hash index
    /// per S-view keyed on its link variables.
    pub fn preprocess(&self, s_views: &[(usize, Relation)]) -> Result<PreprocessedViews> {
        let td = self.pmtd.td();
        let mut rels: Vec<Option<Relation>> = vec![None; td.num_nodes()];
        for (node, rel) in s_views {
            if !self.pmtd.is_materialized(*node) {
                return Err(CqapError::InvalidPmtd(format!(
                    "node {node} is not in the materialization set"
                )));
            }
            let expected = self.pmtd.view_schema(*node);
            if rel.varset() != expected {
                return Err(CqapError::SchemaMismatch {
                    expected: format!("ν({node}) = {expected}"),
                    found: format!("{}", rel.schema()),
                });
            }
            rels[*node] = Some(rel.clone());
        }
        for node in self.pmtd.materialization_set() {
            if rels[node].is_none() {
                return Err(CqapError::InvalidPmtd(format!(
                    "missing S-view for materialized node {node}"
                )));
            }
        }
        // Bottom-up semijoin-reduce over SS-edges.
        for t in td.bottom_up_order() {
            let Some(p) = td.parent(t) else { continue };
            if self.pmtd.is_materialized(t) && self.pmtd.is_materialized(p) {
                let child = rels[t].clone().expect("S-view present");
                let parent = rels[p].take().expect("S-view present");
                rels[p] = Some(parent.semijoin(&child)?);
            }
        }
        // Index every S-view on its link variables.
        let mut views = vec![None; td.num_nodes()];
        for t in 0..td.num_nodes() {
            if let Some(rel) = rels[t].take() {
                let link = self.link(t);
                let index = HashIndex::build(&rel, link)?;
                views[t] = Some(SView { rel, index, link });
            }
        }
        Ok(PreprocessedViews { views })
    }

    /// Online phase (Theorem 3.7): answers the access request given the
    /// T-view contents (one relation per non-materialized node, over exactly
    /// the view schema `ν(t) = χ(t)`). Returns the result over the head
    /// variables.
    pub fn answer(
        &self,
        pre: &PreprocessedViews,
        t_views: &[(usize, Relation)],
        request: &AccessRequest,
    ) -> Result<Relation> {
        self.answer_with(pre, t_views, request)
    }

    /// [`OnlineYannakakis::answer`] over any S-view backend: the same
    /// two-pass algorithm, touching the materialized views only through
    /// [`SViewProbe`] lookups. With [`PreprocessedViews`] this is exactly
    /// `answer`; with a disk backend the identical passes run against
    /// sorted runs on disk, and produce identical answers because every
    /// probe returns the same tuples.
    ///
    /// # Errors
    /// The same validation failures as [`OnlineYannakakis::answer`], plus
    /// whatever storage-level errors the backend's probes surface.
    pub fn answer_with<V: SViewProbe>(
        &self,
        pre: &V,
        t_views: &[(usize, Relation)],
        request: &AccessRequest,
    ) -> Result<Relation> {
        let td = self.pmtd.td();
        let head = self.pmtd.head();
        if request.access() != self.pmtd.access() {
            return Err(CqapError::AccessPatternMismatch {
                expected_arity: self.pmtd.access().len(),
                found_arity: request.access().len(),
            });
        }

        // Load and validate the T-views.
        let mut t_rel: Vec<Option<Relation>> = vec![None; td.num_nodes()];
        for (node, rel) in t_views {
            if self.pmtd.is_materialized(*node) {
                return Err(CqapError::InvalidPmtd(format!(
                    "node {node} is materialized; its content belongs to preprocessing"
                )));
            }
            let expected = self.pmtd.view_schema(*node);
            if rel.varset() != expected {
                return Err(CqapError::SchemaMismatch {
                    expected: format!("ν({node}) = {expected}"),
                    found: format!("{}", rel.schema()),
                });
            }
            t_rel[*node] = Some(rel.clone());
        }
        for t in 0..td.num_nodes() {
            if !self.pmtd.is_materialized(t) && t_rel[t].is_none() {
                return Err(CqapError::InvalidPmtd(format!(
                    "missing T-view for node {t}"
                )));
            }
        }

        // Bottom-up semijoin-reduce pass. `kept[t]` records whether the node
        // still participates in the top-down join pass.
        let mut kept = vec![true; td.num_nodes()];
        for t in td.bottom_up_order() {
            let Some(p) = td.parent(t) else { continue };
            match (self.pmtd.view(t).kind, self.pmtd.view(p).kind) {
                // SS-edge: already reduced during preprocessing.
                (ViewKind::S, ViewKind::S) => {
                    kept[t] = false;
                }
                // ST-edge: probe the S-view's index; the parent T-view keeps
                // only tuples with a partner. The S-view itself stays for
                // the top-down pass only if it contributes head variables
                // not already present in the parent.
                (ViewKind::S, ViewKind::T) => {
                    if pre.schema(t).is_none() {
                        return Err(CqapError::InvalidPmtd(format!(
                            "S-view {t} was not preprocessed"
                        )));
                    }
                    let parent = t_rel[p].take().expect("T-view present");
                    t_rel[p] = Some(semijoin_probe(&parent, pre, t, self.link(t))?);
                    let child_head = self.pmtd.view_schema(t).intersect(head);
                    if child_head.is_subset(self.pmtd.view_schema(p)) {
                        kept[t] = false;
                    }
                }
                // TT-edge: ordinary hash semijoin; project the child to its
                // head variables if it must stay in the tree.
                (ViewKind::T, ViewKind::T) => {
                    let child = t_rel[t].take().expect("T-view present");
                    let parent = t_rel[p].take().expect("T-view present");
                    t_rel[p] = Some(parent.semijoin(&child)?);
                    let child_head = self.pmtd.view_schema(t).intersect(head);
                    if child_head.is_subset(self.pmtd.view_schema(p)) {
                        kept[t] = false;
                        t_rel[t] = Some(child);
                    } else {
                        t_rel[t] = Some(child.project_onto(child_head)?);
                    }
                }
                // A T-child under an S-parent cannot occur: M is closed
                // under subtrees.
                (ViewKind::T, ViewKind::S) => {
                    unreachable!("materialization sets are subtree-closed")
                }
            }
        }

        // Reduce the access request at the root, then run the top-down join
        // pass over the kept nodes.
        let root = td.root();
        let mut acc = request_relation(request);
        match self.pmtd.view(root).kind {
            ViewKind::S => {
                if pre.schema(root).is_none() {
                    return Err(CqapError::InvalidPmtd(
                        "root S-view was not preprocessed".into(),
                    ));
                }
                let link = self.link(root);
                acc = semijoin_probe(&acc, pre, root, link)?;
                acc = join_probe(&acc, pre, root, link)?;
                kept[root] = false;
            }
            ViewKind::T => {
                let reduced = t_rel[root]
                    .take()
                    .expect("root T-view present")
                    .project_onto(self.pmtd.view_schema(root).intersect(head))?;
                acc = acc.semijoin(&reduced)?;
                acc = acc.join(&reduced)?;
                kept[root] = false;
            }
        }

        for t in td.top_down_order() {
            if !kept[t] {
                continue;
            }
            match self.pmtd.view(t).kind {
                ViewKind::S => {
                    acc = join_probe(&acc, pre, t, self.link(t))?;
                }
                ViewKind::T => {
                    let rel = t_rel[t].as_ref().expect("kept T-view present");
                    acc = acc.join(rel)?;
                }
            }
        }
        acc.project_onto(head)
    }
}

/// The access request as a relation; an empty access pattern becomes the
/// nullary relation holding the empty tuple (true) or nothing (false).
fn request_relation(request: &AccessRequest) -> Relation {
    if request.access().is_empty() {
        let mut rel = Relation::new("Q_A", Schema::empty());
        if !request.is_empty() {
            rel.insert(Tuple::empty()).expect("empty tuple");
        }
        rel
    } else {
        request.as_relation()
    }
}

/// Semijoin `left ⋉ view(node)` by probing the S-view backend on the link
/// variables — O(|left|) probes regardless of the view's size. Probe
/// outcomes are memoized per distinct key, so a backend with non-trivial
/// probe cost (disk) is hit once per key, not once per tuple.
fn semijoin_probe<V: SViewProbe>(
    left: &Relation,
    views: &V,
    node: usize,
    link: VarSet,
) -> Result<Relation> {
    let key_positions = left.schema().positions_of_set(link.intersect(left.varset()))?;
    debug_assert_eq!(
        link.intersect(left.varset()),
        link,
        "probe side must contain the link variables"
    );
    // Constant name: intermediate names are only read by tests and debug
    // output, so the hot loop must not pay a `format!` for them.
    let mut out = Relation::new("⋉S", left.schema().clone());
    let mut known: FxHashMap<Tuple, bool> = FxHashMap::default();
    for t in left.iter() {
        let key = t.project(&key_positions);
        let hit = match known.get(&key) {
            Some(&hit) => hit,
            None => {
                let hit = views.contains(node, &key)?;
                known.insert(key, hit);
                hit
            }
        };
        if hit {
            out.insert(t.clone())?;
        }
    }
    Ok(out)
}

/// Join `left ⋈ view(node)` by probing the S-view backend on the link
/// variables; matches are additionally checked on any other shared
/// variables. O(|left| + |output|) probes, one backend probe per distinct
/// key.
fn join_probe<V: SViewProbe>(
    left: &Relation,
    views: &V,
    node: usize,
    link: VarSet,
) -> Result<Relation> {
    let rel_schema = views
        .schema(node)
        .ok_or_else(|| CqapError::InvalidPmtd(format!("S-view {node} was not preprocessed")))?
        .clone();
    let out_schema = left.schema().join(&rel_schema);
    let key_positions = left.schema().positions_of_set(link)?;
    let shared = left.varset().intersect(rel_schema.varset());
    let extra_shared = shared.difference(link);
    let left_extra = left.schema().positions_of_set(extra_shared)?;
    let rel_extra = rel_schema.positions_of_set(extra_shared)?;
    let appended: Vec<usize> = out_schema.vars()[left.schema().arity()..]
        .iter()
        .map(|&v| rel_schema.position(v).expect("appended var"))
        .collect();
    // Constant name, as in `semijoin_probe`: never `format!` per request.
    let mut out = Relation::new("⋈S", out_schema);
    let mut probes: FxHashMap<Tuple, Vec<Tuple>> = FxHashMap::default();
    for lt in left.iter() {
        let key = lt.project(&key_positions);
        if !probes.contains_key(&key) {
            let matched = views.probe(node, &key)?;
            probes.insert(key.clone(), matched);
        }
        let matches = probes.get(&key).expect("just inserted");
        // The left-side comparison key is invariant across the matches of
        // one left tuple: project it once, not once per match.
        let lt_extra = lt.project(&left_extra);
        for rt in matches {
            if lt_extra == rt.project(&rel_extra) {
                out.insert(lt.concat_projected(rt, &appended))?;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_common::vars;
    use cqap_decomp::families as pmtd_families;
    use cqap_query::families as query_families;
    use cqap_query::workload::Graph;
    use cqap_relation::Database;

    /// Computes the content of every view of a PMTD directly from the full
    /// join (the "ideal" materialization the framework's preprocessing
    /// phase produces after its semijoin-reduce step).
    fn views_from_full_join(
        pmtd: &Pmtd,
        cqap: &cqap_query::Cqap,
        db: &Database,
    ) -> (Vec<(usize, Relation)>, Vec<(usize, Relation)>) {
        let full = crate::naive::full_join(cqap, db).unwrap();
        let mut s_views = Vec::new();
        let mut t_views = Vec::new();
        for t in 0..pmtd.td().num_nodes() {
            let rel = full.project_onto(pmtd.view_schema(t)).unwrap();
            if pmtd.is_materialized(t) {
                s_views.push((t, rel));
            } else {
                t_views.push((t, rel));
            }
        }
        (s_views, t_views)
    }

    fn check_pmtd_against_naive(pmtd: &Pmtd, cqap: &cqap_query::Cqap, db: &Database, seed: u64) {
        let oy = OnlineYannakakis::new(pmtd.clone());
        let (s_views, t_views) = views_from_full_join(pmtd, cqap, db);
        let pre = oy.preprocess(&s_views).unwrap();
        let g = Graph::random(40, 10, seed);
        let mut keys = cqap_query::workload::graph_pair_requests(&g, 20, seed);
        keys.push((0, 1));
        for (a, b) in keys {
            let req = AccessRequest::single(cqap.access(), &[a, b]).unwrap();
            let expected = crate::naive::naive_answer(cqap, db, &req).unwrap();
            let got = oy.answer(&pre, &t_views, &req).unwrap();
            assert_eq!(
                got,
                expected,
                "PMTD {} disagrees with the naive evaluator on ({a},{b})",
                pmtd.summary()
            );
        }
    }

    #[test]
    fn figure1_pmtds_agree_with_naive_on_3_reachability() {
        let (cqap, pmtds) = pmtd_families::pmtds_3reach_fig1().unwrap();
        let g = Graph::random(40, 160, 7);
        let db = g.as_path_database(3);
        for pmtd in &pmtds {
            check_pmtd_against_naive(pmtd, &cqap, &db, 11);
        }
    }

    #[test]
    fn figure3_extra_pmtds_agree_with_naive() {
        let (cqap, pmtds) = pmtd_families::pmtds_3reach_all().unwrap();
        let g = Graph::skewed(60, 220, 3, 40, 13);
        let db = g.as_path_database(3);
        for pmtd in &pmtds {
            check_pmtd_against_naive(pmtd, &cqap, &db, 17);
        }
    }

    #[test]
    fn four_reach_pmtds_agree_with_naive() {
        let (cqap, pmtds) = pmtd_families::pmtds_4reach().unwrap();
        let g = Graph::random(30, 120, 23);
        let db = g.as_path_database(4);
        // The eleven PMTDs of Example E.8; checking a representative subset
        // keeps the test fast while covering both chain orientations and
        // the single-bag PMTD.
        for pmtd in pmtds.iter().step_by(3) {
            check_pmtd_against_naive(pmtd, &cqap, &db, 29);
        }
    }

    #[test]
    fn square_pmtds_agree_with_naive() {
        let (cqap, pmtds) = pmtd_families::pmtds_square().unwrap();
        let g = Graph::random(25, 120, 31);
        let mut db = Database::new();
        for i in 1..=4 {
            db.add_relation(Relation::binary(
                format!("R{i}"),
                0,
                1,
                g.edges.iter().copied(),
            ))
            .unwrap();
        }
        // Rename columns per atom is handled by atom_relation; the stored
        // relations only need matching arity.
        for pmtd in &pmtds {
            check_pmtd_against_naive(pmtd, &cqap, &db, 37);
        }
    }

    #[test]
    fn online_time_does_not_scan_s_views() {
        // Probe-only behaviour: answering from the fully-materialized PMTD
        // (S14) touches only the request, regardless of |S-view|.
        let (cqap, pmtds) = pmtd_families::pmtds_3reach_fig1().unwrap();
        let single = &pmtds[2];
        let g = Graph::random(60, 300, 41);
        let db = g.as_path_database(3);
        let oy = OnlineYannakakis::new(single.clone());
        let (s_views, t_views) = views_from_full_join(single, &cqap, &db);
        assert!(t_views.is_empty());
        let pre = oy.preprocess(&s_views).unwrap();
        assert!(pre.stored_values() > 0);
        assert_eq!(pre.num_views(), 1);
        let req = AccessRequest::single(cqap.access(), &[0, 1]).unwrap();
        let expected = crate::naive::naive_answer(&cqap, &db, &req).unwrap();
        assert_eq!(oy.answer(&pre, &[], &req).unwrap(), expected);
    }

    #[test]
    fn validation_errors() {
        let (cqap, pmtds) = pmtd_families::pmtds_3reach_fig1().unwrap();
        let middle = &pmtds[1]; // (T134, S13)
        let g = Graph::random(20, 60, 43);
        let db = g.as_path_database(3);
        let oy = OnlineYannakakis::new(middle.clone());
        let (s_views, t_views) = views_from_full_join(middle, &cqap, &db);

        // Wrong schema for the S-view.
        let bad = vec![(1usize, Relation::binary("bad", 0, 1, [(1, 2)]))];
        assert!(oy.preprocess(&bad).is_err());
        // Missing S-view.
        assert!(oy.preprocess(&[]).is_err());

        let pre = oy.preprocess(&s_views).unwrap();
        // Missing T-view.
        let req = AccessRequest::single(cqap.access(), &[0, 1]).unwrap();
        assert!(oy.answer(&pre, &[], &req).is_err());
        // Wrong access pattern.
        let bad_req = AccessRequest::single(vars![1, 2], &[0, 1]).unwrap();
        assert!(oy.answer(&pre, &t_views, &bad_req).is_err());

        // Supplying a T-view for a materialized node is rejected.
        let wrong_phase = vec![(
            1usize,
            Relation::from_tuples("x", Schema::of([0, 2]), std::iter::empty()).unwrap(),
        )];
        assert!(oy.answer(&pre, &wrong_phase, &req).is_err());
    }

    #[test]
    fn triangle_empty_access_pattern() {
        let q = query_families::triangle_edge();
        let single = cqap_decomp::TreeDecomposition::single(vars![1, 2, 3]);
        let pmtd = Pmtd::for_cqap(single, [0], &q).unwrap();
        let mut db = Database::new();
        db.add_relation(Relation::binary(
            "R",
            0,
            1,
            [(1, 2), (2, 3), (3, 1), (3, 4)],
        ))
        .unwrap();
        let oy = OnlineYannakakis::new(pmtd.clone());
        let (s_views, t_views) = views_from_full_join(&pmtd, &q, &db);
        assert!(t_views.is_empty());
        let pre = oy.preprocess(&s_views).unwrap();
        let req = AccessRequest::new(VarSet::EMPTY, vec![Tuple::empty()]).unwrap();
        let ans = oy.answer(&pre, &[], &req).unwrap();
        assert_eq!(ans.len(), 3);
        assert!(ans.contains(&Tuple::pair(1, 3)));
    }
}
