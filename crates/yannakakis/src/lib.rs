//! # cqap-yannakakis
//!
//! Query evaluation over (partially materialized) tree decompositions:
//!
//! * [`naive`] — a reference evaluator that joins all atoms of a CQAP with
//!   the access request and projects onto the head. It is the ground truth
//!   every other algorithm in the workspace is tested against, and it doubles
//!   as the "answer from scratch" baseline of the experiments.
//! * [`online`] — **Online Yannakakis** (Section 3.1 / Appendix A of the
//!   paper): the two-pass algorithm that answers an access request from a
//!   PMTD's S-views (materialized, probe-only) and T-views (computed
//!   online), in time that depends on the T-views and the output but *not*
//!   on the size of the S-views (Theorem 3.7).
//!
//! ## Quick start
//!
//! The ground-truth evaluator answers any CQAP from scratch:
//!
//! ```
//! use cqap_decomp::families::pmtds_3reach_fig1;
//! use cqap_query::AccessRequest;
//! use cqap_query::workload::Graph;
//! use cqap_yannakakis::naive_answer;
//!
//! let (cqap, _pmtds) = pmtds_3reach_fig1().unwrap();
//! let graph = Graph::random(40, 160, 7);
//! let db = graph.as_path_database(3);
//! let request = AccessRequest::single(cqap.access(), &[0, 1]).unwrap();
//! let answer = naive_answer(&cqap, &db, &request).unwrap();
//! assert!(answer.len() <= 1, "Boolean-given-access CQAP");
//! ```
//!
//! Online Yannakakis answers the same request from a PMTD's preprocessed
//! S-views. The fully materialized PMTD of Figure 1 (the `(S14)` plan)
//! has no T-views at all, so the online phase is a pure index probe:
//!
//! ```
//! use cqap_decomp::families::pmtds_3reach_fig1;
//! use cqap_query::AccessRequest;
//! use cqap_query::workload::Graph;
//! use cqap_yannakakis::naive::full_join;
//! use cqap_yannakakis::{naive_answer, OnlineYannakakis};
//!
//! let (cqap, pmtds) = pmtds_3reach_fig1().unwrap();
//! let graph = Graph::random(40, 160, 7);
//! let db = graph.as_path_database(3);
//!
//! // The third Figure 1 PMTD materializes its single bag as an S-view.
//! let pmtd = pmtds[2].clone();
//! let evaluator = OnlineYannakakis::new(pmtd.clone());
//!
//! // Preprocessing: S-views are semijoin-reduced projections of the full
//! // join (what the paper's preprocessing phase guarantees).
//! let full = full_join(&cqap, &db).unwrap();
//! let s_views: Vec<_> = pmtd
//!     .materialization_set()
//!     .into_iter()
//!     .map(|node| (node, full.project_onto(pmtd.view_schema(node)).unwrap()))
//!     .collect();
//! let preprocessed = evaluator.preprocess(&s_views).unwrap();
//!
//! // Online: no T-views to compute; every answer matches the naive one.
//! for (u, v) in [(0, 1), (3, 7), (12, 4)] {
//!     let request = AccessRequest::single(cqap.access(), &[u, v]).unwrap();
//!     assert_eq!(
//!         evaluator.answer(&preprocessed, &[], &request).unwrap(),
//!         naive_answer(&cqap, &db, &request).unwrap(),
//!     );
//! }
//! ```

pub mod columnar;
pub mod compiled;
pub mod naive;
pub mod online;

pub use columnar::{ColumnRun, ColumnarScratch, KeyMemo};
pub use compiled::{CompiledPlan, PlanScratch};
pub use naive::naive_answer;
pub use online::{OnlineYannakakis, PreprocessedViews, SViewProbe};
