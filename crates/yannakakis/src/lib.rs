//! # cqap-yannakakis
//!
//! Query evaluation over (partially materialized) tree decompositions:
//!
//! * [`naive`] — a reference evaluator that joins all atoms of a CQAP with
//!   the access request and projects onto the head. It is the ground truth
//!   every other algorithm in the workspace is tested against, and it doubles
//!   as the "answer from scratch" baseline of the experiments.
//! * [`online`] — **Online Yannakakis** (Section 3.1 / Appendix A of the
//!   paper): the two-pass algorithm that answers an access request from a
//!   PMTD's S-views (materialized, probe-only) and T-views (computed
//!   online), in time that depends on the T-views and the output but *not*
//!   on the size of the S-views (Theorem 3.7).

pub mod naive;
pub mod online;

pub use naive::naive_answer;
pub use online::{OnlineYannakakis, PreprocessedViews};
