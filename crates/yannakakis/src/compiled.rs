//! Compiled probe plans: the online phase with all per-request bookkeeping
//! hoisted to construction time.
//!
//! [`OnlineYannakakis::answer_with`] re-derives, on *every* request, facts
//! that depend only on the PMTD and the view schemas: which edges are SS /
//! ST / TT, which nodes survive into the top-down pass, where the link
//! variables sit in each schema, what every join's output schema is. A
//! [`CompiledPlan`] resolves all of it once — per (PMTD node, access
//! pattern) — into a linear program of steps over pre-resolved column
//! positions, leaving the per-request work as:
//!
//! 1. validating the request and T-view contents (cheap, per the contract
//!    of the interpreted path);
//! 2. executing the steps against reusable scratch buffers
//!    ([`PlanScratch`], one arena per serving worker): tuples ping-pong
//!    between two pooled vectors, probe results are memoized in a pooled
//!    range table, and semijoin/projection dedup uses pooled hash sets;
//! 3. materializing the single output [`Relation`] through the
//!    duplicate-free [`RelationBuilder`] path — every intermediate the
//!    plan produces is a subset, permutation or key-extension of a set,
//!    so **no relation-level hash-dedup insert happens at all** (the
//!    `cqap_relation::instrument` counter stays flat on the warm path).
//!
//! Answers are identical to the interpreted path by construction: the
//! steps are the same semijoin-reduce and join passes, executed against
//! the same [`SViewProbe`] backend, with the same validation failures.
//! The equivalence proptest in `crates/yannakakis/tests` enforces this
//! against both the interpreted path and the naive evaluator.

use std::sync::Arc;

use cqap_common::{hash_vals, CqapError, FxHashMap, FxHashSet, Result, Tuple, VarSet};
use cqap_decomp::ViewKind;
use cqap_query::AccessRequest;
use cqap_relation::{is_identity, Relation, RelationBuilder, Schema};

use crate::columnar::KeyMemo;
use crate::online::{OnlineYannakakis, SViewProbe};

/// A prebuilt hash grouping of request-independent tuples by a key
/// projection — the static side of a hoisted semijoin or join. Probed by
/// borrowed `&[Val]` key slices (via `Tuple`'s `Borrow<[Val]>`), so warm
/// requests never materialize a key tuple to use one.
pub(crate) type StaticGroups = FxHashMap<Tuple, Vec<Tuple>>;

/// Positions and output schema of a probe-join `left ⋈ view(node)` keyed
/// on the link variables, with matches additionally checked on the other
/// shared variables.
#[derive(Clone, Debug)]
pub(crate) struct ProbeJoin {
    /// Link-variable positions in the left schema (the probe key).
    pub(crate) key_positions: Vec<usize>,
    /// Positions of the non-link shared variables in the left schema.
    pub(crate) left_extra: Vec<usize>,
    /// The same variables' positions in the view schema.
    pub(crate) rel_extra: Vec<usize>,
    /// View positions of the columns appended to the output.
    pub(crate) appended: Vec<usize>,
    /// Arity of the probed view (the width of columnar probe results).
    pub(crate) rel_arity: usize,
    /// Schema of the join output (`left` columns, then appended columns).
    pub(crate) out_schema: Schema,
}

/// Positions and output schema of a hash join `left ⋈ rel` on all shared
/// variables (the T-view joins of the root and top-down steps).
#[derive(Clone, Debug)]
pub(crate) struct HashJoin {
    /// Shared-variable positions in the left schema.
    pub(crate) probe_key: Vec<usize>,
    /// Shared-variable positions in the build (T-view) schema.
    pub(crate) build_key: Vec<usize>,
    /// Build-side positions of the columns appended to the output.
    pub(crate) appended: Vec<usize>,
    /// Schema of the join output.
    pub(crate) out_schema: Schema,
}

/// A deduplicating projection with pre-resolved positions.
#[derive(Clone, Debug)]
pub(crate) struct Project {
    pub(crate) positions: Vec<usize>,
    pub(crate) schema: Schema,
}

/// One bottom-up semijoin-reduce action.
#[derive(Clone, Debug)]
pub(crate) enum BottomUpStep {
    /// ST-edge: keep only parent T-view tuples whose link projection hits
    /// the child S-view (one backend `contains` per distinct key).
    ProbeSemi {
        child: usize,
        parent: usize,
        key_positions: Vec<usize>,
    },
    /// TT-edge: ordinary hash semijoin of the parent by the child.
    HashSemi {
        child: usize,
        parent: usize,
        child_key: Vec<usize>,
        parent_key: Vec<usize>,
    },
    /// TT-edge whose child T-view is request-independent: the child's key
    /// set was built once at compile time, so the per-request cost is one
    /// set lookup per parent tuple — never a scan of the static side.
    HashSemiStaticChild {
        parent: usize,
        parent_key: Vec<usize>,
        keys: Arc<FxHashSet<Tuple>>,
    },
    /// TT-edge whose parent T-view is request-independent: a hash index
    /// over the (large, static) parent was built once at compile time and
    /// is probed with the small request-dependent child keys, making the
    /// reduction output-sensitive instead of `O(|D|)` per request.
    HashSemiStaticParent {
        child: usize,
        parent: usize,
        child_key: Vec<usize>,
        /// Arity of the parent slot (the width of the filtered output).
        parent_arity: usize,
        index: Arc<StaticGroups>,
    },
    /// A TT-child that stays in the tree is projected to its head
    /// variables for the top-down pass.
    ProjectChild { node: usize, project: Project },
}

/// The root reduction.
#[derive(Clone, Debug)]
pub(crate) enum RootStep {
    /// S root: the fused semijoin+join probe of the request against the
    /// root view (a request tuple with no match simply joins to nothing,
    /// so the separate semijoin pass of the interpreted path is folded
    /// into the join).
    Probe { node: usize, join: ProbeJoin },
    /// T root: project the reduced root view to its head variables and
    /// join the request with it.
    Join {
        node: usize,
        project: Project,
        join: HashJoin,
    },
    /// Static T root: the projected root view and its join index were
    /// built at compile time; the request probes them directly.
    JoinStatic {
        join: HashJoin,
        groups: Arc<StaticGroups>,
    },
}

/// One top-down join action.
#[derive(Clone, Debug)]
pub(crate) enum TopDownStep {
    /// Join the accumulator with a kept S-view through the backend.
    Probe { node: usize, join: ProbeJoin },
    /// Join the accumulator with a kept (projected) T-view.
    Join { node: usize, join: HashJoin },
    /// Join the accumulator with a kept *static* T-view whose hash index
    /// was built at compile time: the request-dependent accumulator
    /// probes the static side, never the other way around.
    JoinStatic {
        join: HashJoin,
        groups: Arc<StaticGroups>,
    },
}

/// Reusable per-worker scratch for [`CompiledPlan::answer_with`].
///
/// All buffers retain their capacity across requests, so a warm worker
/// executes the S-only path of a plan without allocating: probe results
/// land in one pooled tuple vector addressed by `(start, end)` ranges, the
/// accumulator ping-pongs between two pooled vectors, and the memo /
/// dedup tables are cleared, never dropped. One scratch per serving
/// worker (the drivers keep it in a thread-local, so every pool thread
/// owns exactly one arena).
#[derive(Debug, Default)]
pub struct PlanScratch {
    /// Pooled probe results; `ranges` addresses slices of it.
    pool: Vec<Tuple>,
    /// Per-step memo: probe key → `(start, end)` range in `pool`. Keyed by
    /// a precomputed 64-bit key hash plus a slice check, so each key
    /// occurrence is hashed exactly once (lookup and insertion reuse the
    /// same hash instead of re-hashing the projected slice).
    ranges: KeyMemo<(u32, u32)>,
    /// Per-step memo for semijoin probes: key → hit (hash-cached like
    /// `ranges`).
    semi: KeyMemo<bool>,
    /// Per-step dedup / key set.
    keys: FxHashSet<Tuple>,
    /// Reused key-projection buffer: memo tables are probed with this
    /// slice (via `Tuple`'s `Borrow<[Val]>`), so an owned key tuple is
    /// built only on the miss path.
    key_vals: Vec<cqap_common::Val>,
    /// Build side of the T-view hash joins.
    groups: FxHashMap<Tuple, Vec<Tuple>>,
    /// The two accumulator buffers.
    acc_a: Vec<Tuple>,
    acc_b: Vec<Tuple>,
    /// Recycled vectors for owned T-view slots.
    slot_pool: Vec<Vec<Tuple>>,
}

impl PlanScratch {
    /// A fresh scratch arena (all buffers empty).
    pub fn new() -> Self {
        PlanScratch::default()
    }

    fn take_slot_vec(&mut self) -> Vec<Tuple> {
        self.slot_pool.pop().unwrap_or_default()
    }

    fn recycle_slot_vec(&mut self, mut v: Vec<Tuple>) {
        v.clear();
        self.slot_pool.push(v);
    }
}

/// A T-view's tuples during plan execution: borrowed from the caller until
/// a bottom-up step filters or projects it.
enum Slot<'a> {
    Empty,
    Borrowed(&'a [Tuple]),
    Owned(Vec<Tuple>),
}

impl Slot<'_> {
    fn tuples(&self) -> &[Tuple] {
        match self {
            Slot::Empty => &[],
            Slot::Borrowed(t) => t,
            Slot::Owned(v) => v,
        }
    }

    fn is_empty_slot(&self) -> bool {
        matches!(self, Slot::Empty)
    }
}

/// An Online-Yannakakis execution compiled for one PMTD, one access
/// pattern and one fixed set of view schemas.
///
/// Built once per plan at index-construction time via
/// [`OnlineYannakakis::compile`]; executed per request via
/// [`CompiledPlan::answer_with`] against any [`SViewProbe`] backend whose
/// view schemas match the compile-time ones (the in-memory and disk
/// backends spill the *same* preprocessing output, so one compiled plan
/// serves both).
#[derive(Clone, Debug)]
pub struct CompiledPlan {
    pub(crate) access: VarSet,
    pub(crate) num_nodes: usize,
    pub(crate) materialized: Vec<bool>,
    /// Expected schema per non-materialized node (compile-time T-view
    /// column order; a request supplying the same varset in a different
    /// order is reordered on a slow path).
    pub(crate) t_schema: Vec<Option<Schema>>,
    /// Expected varset per non-materialized node (for validation).
    pub(crate) t_varset: Vec<Option<VarSet>>,
    /// Nodes whose T-view content is request-independent and was folded
    /// into the plan at compile time (hoisted reductions, prebuilt join
    /// indexes): callers may omit them per request, and any content they
    /// do pass is validated but not read.
    pub(crate) static_node: Vec<bool>,
    /// `(node, schema)` of every S-view the plan probes, validated against
    /// the backend per request.
    pub(crate) s_views: Vec<(usize, Schema)>,
    pub(crate) bottom_up: Vec<BottomUpStep>,
    pub(crate) root: RootStep,
    pub(crate) top_down: Vec<TopDownStep>,
    /// Final projection onto the head; `None` when it is the identity.
    pub(crate) final_project: Option<Project>,
    /// Schema of the accumulator after the last step (the output schema
    /// when `final_project` is `None`).
    pub(crate) final_schema: Schema,
}

fn compile_probe_join(left: &Schema, rel: &Schema, link: VarSet) -> Result<ProbeJoin> {
    let out_schema = left.join(rel);
    let key_positions = left.positions_of_set(link)?;
    let shared = left.varset().intersect(rel.varset());
    let extra = shared.difference(link);
    let left_extra = left.positions_of_set(extra)?;
    let rel_extra = rel.positions_of_set(extra)?;
    let appended = out_schema.vars()[left.arity()..]
        .iter()
        .map(|&v| rel.position(v).expect("appended var"))
        .collect();
    Ok(ProbeJoin {
        key_positions,
        left_extra,
        rel_extra,
        appended,
        rel_arity: rel.arity(),
        out_schema,
    })
}

/// Groups `tuples` by their projection onto `key` — the compile-time
/// build of every hoisted static-side index.
fn group_by(tuples: &[Tuple], key: &[usize]) -> StaticGroups {
    let mut groups = StaticGroups::default();
    for t in tuples {
        groups.entry(t.project(key)).or_default().push(t.clone());
    }
    groups
}

fn compile_hash_join(left: &Schema, rel: &Schema) -> Result<HashJoin> {
    let shared = left.varset().intersect(rel.varset());
    let out_schema = left.join(rel);
    let probe_key = left.positions_of_set(shared)?;
    let build_key = rel.positions_of_set(shared)?;
    let appended = out_schema.vars()[left.arity()..]
        .iter()
        .map(|&v| rel.position(v).expect("appended var"))
        .collect();
    Ok(HashJoin {
        probe_key,
        build_key,
        appended,
        out_schema,
    })
}

fn compile_project(from: &Schema, keep: VarSet) -> Result<Project> {
    let keep = keep.intersect(from.varset());
    Ok(Project {
        positions: from.positions_of_set(keep)?,
        schema: Schema::of(keep.iter()),
    })
}

impl OnlineYannakakis {
    /// Compiles this evaluator's PMTD into a [`CompiledPlan`] against the
    /// backend's S-view schemas and the supplied per-node T-view schemas
    /// (the column orders the online driver will deliver — for the
    /// framework driver these are fixed per CQAP and derived once at
    /// build time).
    ///
    /// # Errors
    /// Fails if a probed S-view is missing from the backend, a
    /// non-materialized node has no schema in `t_schemas`, or a schema
    /// does not cover its link variables — exactly the shapes the
    /// interpreted path would reject per request.
    pub fn compile<V: SViewProbe>(
        &self,
        views: &V,
        t_schemas: &[(usize, Schema)],
    ) -> Result<CompiledPlan> {
        self.compile_with_statics(views, t_schemas, &[])
    }

    /// [`OnlineYannakakis::compile`] with the contents of the
    /// *request-independent* T-views supplied up front, so every reduction
    /// that touches only static state is hoisted out of the per-request
    /// plan:
    ///
    /// * static-only edges (both sides request-independent, or a static
    ///   parent under an S-child) are **folded**: the semijoin runs once,
    ///   now, against `statics` and `views`;
    /// * an edge with one static side gets a **prebuilt** key set / hash
    ///   index over that side, so the per-request pass probes the static
    ///   side with the small request-dependent side instead of scanning
    ///   its `O(|D|)` tuples;
    /// * root and top-down joins against still-static views probe a
    ///   compile-time join index (the accumulator is the probe side).
    ///
    /// Each `(node, relation)` of `statics` must match the node's entry in
    /// `t_schemas` exactly (same column order). The caller promises that
    /// every future request would supply the same content for these nodes
    /// — the compiled drivers guarantee it by construction (an access-free
    /// bag's T-view cannot depend on the request) — and may then omit them
    /// from the per-request T-views entirely; content passed anyway is
    /// validated but not read.
    ///
    /// # Errors
    /// The failure modes of [`OnlineYannakakis::compile`], plus a schema
    /// mismatch between `statics` and `t_schemas`.
    pub fn compile_with_statics<V: SViewProbe>(
        &self,
        views: &V,
        t_schemas: &[(usize, Schema)],
        statics: &[(usize, &Relation)],
    ) -> Result<CompiledPlan> {
        let pmtd = self.pmtd();
        let td = pmtd.td();
        let head = pmtd.head();
        let num_nodes = td.num_nodes();

        let materialized: Vec<bool> = (0..num_nodes).map(|t| pmtd.is_materialized(t)).collect();
        let mut slot_schema: Vec<Option<Schema>> = vec![None; num_nodes];
        for (node, schema) in t_schemas {
            if *node >= num_nodes || materialized[*node] {
                return Err(CqapError::InvalidPmtd(format!(
                    "node {node} is materialized; its content belongs to preprocessing"
                )));
            }
            let expected = pmtd.view_schema(*node);
            if schema.varset() != expected {
                return Err(CqapError::SchemaMismatch {
                    expected: format!("ν({node}) = {expected}"),
                    found: format!("{schema}"),
                });
            }
            slot_schema[*node] = Some(schema.clone());
        }
        for t in 0..num_nodes {
            if !materialized[t] && slot_schema[t].is_none() {
                return Err(CqapError::InvalidPmtd(format!(
                    "missing T-view schema for node {t}"
                )));
            }
        }
        let t_schema = slot_schema.clone();
        let t_varset: Vec<Option<VarSet>> = t_schema
            .iter()
            .map(|s| s.as_ref().map(Schema::varset))
            .collect();

        // Request-independent T-view contents, tracked through the
        // bottom-up pass: a `Some` entry means the slot's content at this
        // point of the step program is known at compile time, so any
        // reduction over it can be hoisted out of the per-request plan.
        let mut static_rows: Vec<Option<Vec<Tuple>>> = vec![None; num_nodes];
        for (node, rel) in statics {
            if *node >= num_nodes || materialized[*node] {
                return Err(CqapError::InvalidPmtd(format!(
                    "static content supplied for node {node}, which is not a T-view"
                )));
            }
            let expected = slot_schema[*node].as_ref().expect("validated above");
            if rel.schema() != expected {
                return Err(CqapError::SchemaMismatch {
                    expected: format!("{expected}"),
                    found: format!("{}", rel.schema()),
                });
            }
            static_rows[*node] = Some(rel.tuples().to_vec());
        }
        let static_node: Vec<bool> = static_rows.iter().map(Option::is_some).collect();

        let mut s_views: Vec<(usize, Schema)> = Vec::new();
        let mut require_s_view = |node: usize| -> Result<Schema> {
            let schema = views.schema(node).ok_or_else(|| {
                CqapError::InvalidPmtd(format!("S-view {node} was not preprocessed"))
            })?;
            if !s_views.iter().any(|(n, _)| *n == node) {
                s_views.push((node, schema.clone()));
            }
            Ok(schema.clone())
        };

        // Bottom-up pass over the edges, mirroring the interpreted path but
        // recording position-resolved steps instead of executing them —
        // except where a side is static, in which case the reduction is
        // folded (both sides static) or its static side is pre-indexed.
        let mut bottom_up = Vec::new();
        let mut kept = vec![true; num_nodes];
        for t in td.bottom_up_order() {
            let Some(p) = td.parent(t) else { continue };
            match (pmtd.view(t).kind, pmtd.view(p).kind) {
                (ViewKind::S, ViewKind::S) => {
                    kept[t] = false;
                }
                (ViewKind::S, ViewKind::T) => {
                    require_s_view(t)?;
                    let link = self.link(t);
                    let parent_schema = slot_schema[p].as_ref().expect("T slot schema");
                    let key_positions = parent_schema.positions_of_set(link)?;
                    if let Some(rows) = static_rows[p].take() {
                        // Fold: the reduction is request-independent; run
                        // it once against the backend, now.
                        let mut known: FxHashMap<Tuple, bool> = FxHashMap::default();
                        let mut filtered = Vec::with_capacity(rows.len());
                        for tup in rows {
                            let key = tup.project(&key_positions);
                            let hit = match known.get(&key) {
                                Some(&hit) => hit,
                                None => {
                                    let hit = views.contains(t, &key)?;
                                    known.insert(key, hit);
                                    hit
                                }
                            };
                            if hit {
                                filtered.push(tup);
                            }
                        }
                        static_rows[p] = Some(filtered);
                    } else {
                        bottom_up.push(BottomUpStep::ProbeSemi {
                            child: t,
                            parent: p,
                            key_positions,
                        });
                    }
                    let child_head = pmtd.view_schema(t).intersect(head);
                    if child_head.is_subset(pmtd.view_schema(p)) {
                        kept[t] = false;
                    }
                }
                (ViewKind::T, ViewKind::T) => {
                    let child_schema = slot_schema[t].as_ref().expect("T slot schema");
                    let parent_schema = slot_schema[p].as_ref().expect("T slot schema");
                    let shared = child_schema.varset().intersect(parent_schema.varset());
                    let child_key = child_schema.positions_of_set(shared)?;
                    let parent_key = parent_schema.positions_of_set(shared)?;
                    let parent_arity = parent_schema.arity();
                    match (static_rows[t].is_some(), static_rows[p].is_some()) {
                        // Both sides static: fold the whole semijoin.
                        (true, true) => {
                            let keys: FxHashSet<Tuple> = static_rows[t]
                                .as_ref()
                                .expect("static child")
                                .iter()
                                .map(|c| c.project(&child_key))
                                .collect();
                            let rows = static_rows[p].take().expect("static parent");
                            static_rows[p] = Some(
                                rows.into_iter()
                                    .filter(|pt| keys.contains(&pt.project(&parent_key)))
                                    .collect(),
                            );
                        }
                        // Static child: prebuild its key set.
                        (true, false) => {
                            let keys: FxHashSet<Tuple> = static_rows[t]
                                .as_ref()
                                .expect("static child")
                                .iter()
                                .map(|c| c.project(&child_key))
                                .collect();
                            bottom_up.push(BottomUpStep::HashSemiStaticChild {
                                parent: p,
                                parent_key,
                                keys: Arc::new(keys),
                            });
                        }
                        // Static parent: prebuild an index over it, probed
                        // with the dynamic child's keys; the parent slot
                        // becomes request-dependent from here on.
                        (false, true) => {
                            let rows = static_rows[p].take().expect("static parent");
                            bottom_up.push(BottomUpStep::HashSemiStaticParent {
                                child: t,
                                parent: p,
                                child_key,
                                parent_arity,
                                index: Arc::new(group_by(&rows, &parent_key)),
                            });
                        }
                        (false, false) => {
                            bottom_up.push(BottomUpStep::HashSemi {
                                child: t,
                                parent: p,
                                child_key,
                                parent_key,
                            });
                        }
                    }
                    let child_head = pmtd.view_schema(t).intersect(head);
                    if child_head.is_subset(pmtd.view_schema(p)) {
                        kept[t] = false;
                    } else {
                        let project =
                            compile_project(slot_schema[t].as_ref().expect("T slot schema"), child_head)?;
                        if let Some(rows) = static_rows[t].take() {
                            let mut keys = FxHashSet::default();
                            let mut projected = Vec::new();
                            project_dedup(&rows, &project.positions, &mut keys, &mut projected);
                            static_rows[t] = Some(projected);
                        } else {
                            bottom_up.push(BottomUpStep::ProjectChild {
                                node: t,
                                project: project.clone(),
                            });
                        }
                        slot_schema[t] = Some(project.schema.clone());
                    }
                }
                (ViewKind::T, ViewKind::S) => {
                    unreachable!("materialization sets are subtree-closed")
                }
            }
        }

        // Root reduction, then the top-down joins over the kept nodes.
        let access = pmtd.access();
        let mut acc_schema = Schema::of(access.iter());
        let root_node = td.root();
        let root = match pmtd.view(root_node).kind {
            ViewKind::S => {
                let s_schema = require_s_view(root_node)?;
                let join = compile_probe_join(&acc_schema, &s_schema, self.link(root_node))?;
                acc_schema = join.out_schema.clone();
                RootStep::Probe {
                    node: root_node,
                    join,
                }
            }
            ViewKind::T => {
                let root_schema = slot_schema[root_node].as_ref().expect("T slot schema");
                let project =
                    compile_project(root_schema, pmtd.view_schema(root_node).intersect(head))?;
                let join = compile_hash_join(&acc_schema, &project.schema)?;
                acc_schema = join.out_schema.clone();
                if let Some(rows) = static_rows[root_node].take() {
                    // Static root: the projected root view and its join
                    // index are built once, now.
                    let mut keys = FxHashSet::default();
                    let mut reduced = Vec::new();
                    project_dedup(&rows, &project.positions, &mut keys, &mut reduced);
                    RootStep::JoinStatic {
                        groups: Arc::new(group_by(&reduced, &join.build_key)),
                        join,
                    }
                } else {
                    RootStep::Join {
                        node: root_node,
                        project,
                        join,
                    }
                }
            }
        };
        kept[root_node] = false;

        let mut top_down = Vec::new();
        for t in td.top_down_order() {
            if !kept[t] {
                continue;
            }
            match pmtd.view(t).kind {
                ViewKind::S => {
                    let s_schema = require_s_view(t)?;
                    let join = compile_probe_join(&acc_schema, &s_schema, self.link(t))?;
                    acc_schema = join.out_schema.clone();
                    top_down.push(TopDownStep::Probe { node: t, join });
                }
                ViewKind::T => {
                    let rel_schema = slot_schema[t].as_ref().expect("T slot schema");
                    let join = compile_hash_join(&acc_schema, rel_schema)?;
                    acc_schema = join.out_schema.clone();
                    if let Some(rows) = static_rows[t].take() {
                        top_down.push(TopDownStep::JoinStatic {
                            groups: Arc::new(group_by(&rows, &join.build_key)),
                            join,
                        });
                    } else {
                        top_down.push(TopDownStep::Join { node: t, join });
                    }
                }
            }
        }

        let final_project = {
            let project = compile_project(&acc_schema, head)?;
            if is_identity(&project.positions, acc_schema.arity()) {
                None
            } else {
                Some(project)
            }
        };
        let final_schema = match &final_project {
            Some(p) => p.schema.clone(),
            None => acc_schema,
        };

        Ok(CompiledPlan {
            access,
            num_nodes,
            materialized,
            t_schema,
            t_varset,
            static_node,
            s_views,
            bottom_up,
            root,
            top_down,
            final_project,
            final_schema,
        })
    }
}

impl CompiledPlan {
    /// The access pattern this plan answers.
    pub fn access(&self) -> VarSet {
        self.access
    }

    /// The schema of the answers this plan produces.
    pub fn output_schema(&self) -> &Schema {
        &self.final_schema
    }

    /// Executes the plan: same inputs, same validation failures and same
    /// answers as [`OnlineYannakakis::answer_with`], with every schema
    /// lookup and traversal decision pre-resolved and all intermediate
    /// state living in `scratch`.
    ///
    /// # Errors
    /// The same validation failures as the interpreted path, plus whatever
    /// storage-level errors the backend's probes surface.
    pub fn answer_with<V: SViewProbe>(
        &self,
        views: &V,
        t_views: &[(usize, &Relation)],
        request: &AccessRequest,
        scratch: &mut PlanScratch,
    ) -> Result<Relation> {
        self.check_access(request)?;
        self.check_backend(views)?;

        // Load and validate the T-views; matching column orders are
        // borrowed, mismatching ones reordered on a (rare) slow path.
        // Static nodes are validated but never read — their (folded)
        // content lives inside the plan.
        let mut slots: Vec<Slot> = (0..self.num_nodes).map(|_| Slot::Empty).collect();
        for (node, rel) in t_views {
            self.check_t_view(*node, rel)?;
            if self.static_node[*node] {
                continue;
            }
            let expected = self.t_schema[*node].as_ref().expect("validated at compile");
            if rel.schema() == expected {
                slots[*node] = Slot::Borrowed(rel.tuples());
            } else {
                let positions = rel.schema().positions_of(expected.vars())?;
                let mut owned = scratch.take_slot_vec();
                owned.extend(rel.iter().map(|t| t.project(&positions)));
                slots[*node] = Slot::Owned(owned);
            }
        }
        for t in 0..self.num_nodes {
            if !self.materialized[t] && !self.static_node[t] && slots[t].is_empty_slot() {
                return Err(CqapError::InvalidPmtd(format!(
                    "missing T-view for node {t}"
                )));
            }
        }

        let result = self.run(views, request, &mut slots, scratch);
        for slot in slots {
            if let Slot::Owned(v) = slot {
                scratch.recycle_slot_vec(v);
            }
        }
        result
    }

    /// Rejects a request whose access pattern differs from the compiled
    /// one.
    pub(crate) fn check_access(&self, request: &AccessRequest) -> Result<()> {
        if request.access() != self.access {
            return Err(CqapError::AccessPatternMismatch {
                expected_arity: self.access.len(),
                found_arity: request.access().len(),
            });
        }
        Ok(())
    }

    /// The backend must expose exactly the views this plan was compiled
    /// against (a different backend spilled from the same preprocessing
    /// output passes by construction).
    pub(crate) fn check_backend<V: SViewProbe>(&self, views: &V) -> Result<()> {
        for (node, expected) in &self.s_views {
            match views.schema(*node) {
                None => {
                    return Err(CqapError::InvalidPmtd(format!(
                        "S-view {node} was not preprocessed"
                    )))
                }
                Some(schema) if schema != expected => {
                    return Err(CqapError::SchemaMismatch {
                        expected: format!("{expected}"),
                        found: format!("{schema}"),
                    })
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    /// Validates one supplied T-view against the compile-time node set and
    /// varset.
    pub(crate) fn check_t_view(&self, node: usize, rel: &Relation) -> Result<()> {
        if node >= self.num_nodes || self.materialized[node] {
            return Err(CqapError::InvalidPmtd(format!(
                "node {node} is materialized; its content belongs to preprocessing"
            )));
        }
        let expected_varset = self.t_varset[node].expect("validated at compile");
        if rel.varset() != expected_varset {
            return Err(CqapError::SchemaMismatch {
                expected: format!("ν({node}) = {expected_varset}"),
                found: format!("{}", rel.schema()),
            });
        }
        Ok(())
    }

    fn run<V: SViewProbe>(
        &self,
        views: &V,
        request: &AccessRequest,
        slots: &mut [Slot],
        scratch: &mut PlanScratch,
    ) -> Result<Relation> {
        // Bottom-up semijoin-reduce.
        for step in &self.bottom_up {
            match step {
                BottomUpStep::ProbeSemi {
                    child,
                    parent,
                    key_positions,
                } => {
                    scratch.semi.clear();
                    let src = std::mem::replace(&mut slots[*parent], Slot::Empty);
                    let mut filtered = scratch.take_slot_vec();
                    for t in src.tuples() {
                        t.project_into(key_positions, &mut scratch.key_vals);
                        let hash = hash_vals(&scratch.key_vals);
                        let hit = match scratch.semi.get(hash, &scratch.key_vals) {
                            Some(&hit) => hit,
                            None => {
                                let key = Tuple::from_slice(&scratch.key_vals);
                                let hit = views.contains(*child, &key)?;
                                scratch.semi.insert(hash, &scratch.key_vals, hit);
                                hit
                            }
                        };
                        if hit {
                            filtered.push(t.clone());
                        }
                    }
                    if let Slot::Owned(v) = src {
                        scratch.recycle_slot_vec(v);
                    }
                    slots[*parent] = Slot::Owned(filtered);
                }
                BottomUpStep::HashSemi {
                    child,
                    parent,
                    child_key,
                    parent_key,
                } => {
                    scratch.keys.clear();
                    for t in slots[*child].tuples() {
                        scratch.keys.insert(t.project(child_key));
                    }
                    let src = std::mem::replace(&mut slots[*parent], Slot::Empty);
                    let mut filtered = scratch.take_slot_vec();
                    for t in src.tuples() {
                        t.project_into(parent_key, &mut scratch.key_vals);
                        if scratch.keys.contains(scratch.key_vals.as_slice()) {
                            filtered.push(t.clone());
                        }
                    }
                    if let Slot::Owned(v) = src {
                        scratch.recycle_slot_vec(v);
                    }
                    slots[*parent] = Slot::Owned(filtered);
                }
                BottomUpStep::HashSemiStaticChild {
                    parent,
                    parent_key,
                    keys,
                } => {
                    let src = std::mem::replace(&mut slots[*parent], Slot::Empty);
                    let mut filtered = scratch.take_slot_vec();
                    for t in src.tuples() {
                        t.project_into(parent_key, &mut scratch.key_vals);
                        if keys.contains(scratch.key_vals.as_slice()) {
                            filtered.push(t.clone());
                        }
                    }
                    if let Slot::Owned(v) = src {
                        scratch.recycle_slot_vec(v);
                    }
                    slots[*parent] = Slot::Owned(filtered);
                }
                BottomUpStep::HashSemiStaticParent {
                    child,
                    parent,
                    child_key,
                    index,
                    ..
                } => {
                    // Probe the prebuilt static-parent index with each
                    // distinct key of the (small) dynamic child.
                    scratch.keys.clear();
                    let mut filtered = scratch.take_slot_vec();
                    for t in slots[*child].tuples() {
                        t.project_into(child_key, &mut scratch.key_vals);
                        if scratch.keys.contains(scratch.key_vals.as_slice()) {
                            continue;
                        }
                        scratch.keys.insert(Tuple::from_slice(&scratch.key_vals));
                        if let Some(bucket) = index.get(scratch.key_vals.as_slice()) {
                            filtered.extend(bucket.iter().cloned());
                        }
                    }
                    let old = std::mem::replace(&mut slots[*parent], Slot::Owned(filtered));
                    if let Slot::Owned(v) = old {
                        scratch.recycle_slot_vec(v);
                    }
                }
                BottomUpStep::ProjectChild { node, project } => {
                    let src = std::mem::replace(&mut slots[*node], Slot::Empty);
                    let mut projected = scratch.take_slot_vec();
                    project_dedup(
                        src.tuples(),
                        &project.positions,
                        &mut scratch.keys,
                        &mut projected,
                    );
                    if let Slot::Owned(v) = src {
                        scratch.recycle_slot_vec(v);
                    }
                    slots[*node] = Slot::Owned(projected);
                }
            }
        }

        // Seed the accumulator with the (deduplicated) request bindings.
        let mut acc = std::mem::take(&mut scratch.acc_a);
        let mut next = std::mem::take(&mut scratch.acc_b);
        acc.clear();
        next.clear();
        if self.access.is_empty() {
            if !request.is_empty() {
                acc.push(Tuple::empty());
            }
        } else if request.len() <= 1 {
            acc.extend_from_slice(request.tuples());
        } else {
            scratch.keys.clear();
            for t in request.tuples() {
                if !scratch.keys.contains(t) {
                    scratch.keys.insert(t.clone());
                    acc.push(t.clone());
                }
            }
        }

        // Root reduction.
        match &self.root {
            RootStep::Probe { node, join } => {
                self.exec_probe_join(views, *node, join, &acc, &mut next, scratch)?;
                std::mem::swap(&mut acc, &mut next);
            }
            RootStep::Join {
                node,
                project,
                join,
            } => {
                let src = std::mem::replace(&mut slots[*node], Slot::Empty);
                let mut reduced = scratch.take_slot_vec();
                project_dedup(
                    src.tuples(),
                    &project.positions,
                    &mut scratch.keys,
                    &mut reduced,
                );
                if let Slot::Owned(v) = src {
                    scratch.recycle_slot_vec(v);
                }
                exec_hash_join(join, &acc, &reduced, &mut next, &mut scratch.groups);
                scratch.recycle_slot_vec(reduced);
                std::mem::swap(&mut acc, &mut next);
            }
            RootStep::JoinStatic { join, groups } => {
                exec_static_join(join, groups, &acc, &mut next, &mut scratch.key_vals);
                std::mem::swap(&mut acc, &mut next);
            }
        }

        // Top-down joins over the kept nodes.
        for step in &self.top_down {
            match step {
                TopDownStep::Probe { node, join } => {
                    self.exec_probe_join(views, *node, join, &acc, &mut next, scratch)?;
                }
                TopDownStep::Join { node, join } => {
                    exec_hash_join(join, &acc, slots[*node].tuples(), &mut next, &mut scratch.groups);
                }
                TopDownStep::JoinStatic { join, groups } => {
                    exec_static_join(join, groups, &acc, &mut next, &mut scratch.key_vals);
                }
            }
            std::mem::swap(&mut acc, &mut next);
        }

        // Materialize the answer; every path above preserves distinctness,
        // so the builder never touches the dedup machinery.
        let out = match &self.final_project {
            None => {
                let mut builder =
                    RelationBuilder::distinct("Q_ans", self.final_schema.clone());
                for t in &acc {
                    builder.push(t.clone());
                }
                builder.finish()
            }
            Some(project) => {
                // `next` holds the previous step's (stale) accumulator
                // after the last swap — drop it before reusing the buffer.
                next.clear();
                project_dedup(&acc, &project.positions, &mut scratch.keys, &mut next);
                let mut builder =
                    RelationBuilder::distinct("Q_ans", project.schema.clone());
                for t in next.drain(..) {
                    builder.push(t);
                }
                builder.finish()
            }
        };
        scratch.acc_a = acc;
        scratch.acc_b = next;
        Ok(out)
    }

    /// `acc_out = acc_in ⋈ view(node)` by probing the backend on the link
    /// variables; one backend probe per distinct key, results pooled in
    /// `scratch.pool` and shared across the accumulator via ranges.
    fn exec_probe_join<V: SViewProbe>(
        &self,
        views: &V,
        node: usize,
        join: &ProbeJoin,
        acc_in: &[Tuple],
        acc_out: &mut Vec<Tuple>,
        scratch: &mut PlanScratch,
    ) -> Result<()> {
        scratch.ranges.clear();
        scratch.pool.clear();
        acc_out.clear();
        for lt in acc_in {
            lt.project_into(&join.key_positions, &mut scratch.key_vals);
            let hash = hash_vals(&scratch.key_vals);
            let (start, end) = match scratch.ranges.get(hash, &scratch.key_vals) {
                Some(&range) => range,
                None => {
                    let key = Tuple::from_slice(&scratch.key_vals);
                    let start = scratch.pool.len() as u32;
                    views.probe_into(node, &key, &mut scratch.pool)?;
                    let end = scratch.pool.len() as u32;
                    scratch.ranges.insert(hash, &scratch.key_vals, (start, end));
                    (start, end)
                }
            };
            let matches = &scratch.pool[start as usize..end as usize];
            if join.left_extra.is_empty() {
                for rt in matches {
                    acc_out.push(lt.concat_projected(rt, &join.appended));
                }
            } else {
                for rt in matches {
                    if lt.projected_eq(&join.left_extra, rt, &join.rel_extra) {
                        acc_out.push(lt.concat_projected(rt, &join.appended));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Deduplicating projection of `src` onto `positions` into `out`, using
/// `keys` as the (cleared) per-step membership set — the shape shared by
/// the kept-child, reduced-root and final projections of a plan.
fn project_dedup(
    src: &[Tuple],
    positions: &[usize],
    keys: &mut FxHashSet<Tuple>,
    out: &mut Vec<Tuple>,
) {
    keys.clear();
    for t in src {
        let p = t.project(positions);
        if !keys.contains(&p) {
            keys.insert(p.clone());
            out.push(p);
        }
    }
}

/// `acc_out = acc_in ⋈ static side` through a compile-time join index:
/// the request-dependent accumulator probes the prebuilt groups with a
/// borrowed key slice — the static side is never scanned, and no build
/// work happens per request.
fn exec_static_join(
    join: &HashJoin,
    groups: &StaticGroups,
    acc_in: &[Tuple],
    acc_out: &mut Vec<Tuple>,
    key_vals: &mut Vec<cqap_common::Val>,
) {
    acc_out.clear();
    for lt in acc_in {
        lt.project_into(&join.probe_key, key_vals);
        if let Some(bucket) = groups.get(key_vals.as_slice()) {
            for rt in bucket {
                acc_out.push(lt.concat_projected(rt, &join.appended));
            }
        }
    }
}

/// `acc_out = acc_in ⋈ rel` on all shared variables: build a hash table
/// over the (request-dependent, hence small) T-view side, probe with the
/// accumulator.
fn exec_hash_join(
    join: &HashJoin,
    acc_in: &[Tuple],
    rel: &[Tuple],
    acc_out: &mut Vec<Tuple>,
    groups: &mut FxHashMap<Tuple, Vec<Tuple>>,
) {
    groups.clear();
    for rt in rel {
        groups
            .entry(rt.project(&join.build_key))
            .or_default()
            .push(rt.clone());
    }
    acc_out.clear();
    for lt in acc_in {
        if let Some(bucket) = groups.get(&lt.project(&join.probe_key)) {
            for rt in bucket {
                acc_out.push(lt.concat_projected(rt, &join.appended));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar::ColumnarScratch;
    use crate::naive::full_join;
    use crate::online::PreprocessedViews;
    use cqap_decomp::families as pmtd_families;
    use cqap_decomp::Pmtd;
    use cqap_query::workload::Graph;
    use cqap_relation::Database;

    fn views_for(
        pmtd: &Pmtd,
        cqap: &cqap_query::Cqap,
        db: &Database,
    ) -> (PreprocessedViews, Vec<(usize, Relation)>) {
        let full = full_join(cqap, db).unwrap();
        let oy = OnlineYannakakis::new(pmtd.clone());
        let mut s_views = Vec::new();
        let mut t_views = Vec::new();
        for t in 0..pmtd.td().num_nodes() {
            let rel = full.project_onto(pmtd.view_schema(t)).unwrap();
            if pmtd.is_materialized(t) {
                s_views.push((t, rel));
            } else {
                t_views.push((t, rel));
            }
        }
        (oy.preprocess(&s_views).unwrap(), t_views)
    }

    fn t_schemas(t_views: &[(usize, Relation)]) -> Vec<(usize, Schema)> {
        t_views
            .iter()
            .map(|(n, r)| (*n, r.schema().clone()))
            .collect()
    }

    fn refs(t_views: &[(usize, Relation)]) -> Vec<(usize, &Relation)> {
        t_views.iter().map(|(n, r)| (*n, r)).collect()
    }

    #[test]
    fn compiled_matches_interpreted_on_every_fig1_pmtd() {
        let (cqap, pmtds) = pmtd_families::pmtds_3reach_fig1().unwrap();
        let g = Graph::random(40, 160, 7);
        let db = g.as_path_database(3);
        let mut scratch = PlanScratch::new();
        let mut col = ColumnarScratch::new();
        for pmtd in &pmtds {
            let oy = OnlineYannakakis::new(pmtd.clone());
            let (pre, t_views) = views_for(pmtd, &cqap, &db);
            let plan = oy.compile(&pre, &t_schemas(&t_views)).unwrap();
            for (a, b) in [(0u64, 1u64), (3, 7), (12, 4), (1, 1)] {
                let req = AccessRequest::single(cqap.access(), &[a, b]).unwrap();
                let interpreted = oy.answer(&pre, &t_views, &req).unwrap();
                let compiled = plan.answer_with(&pre, &refs(&t_views), &req, &mut scratch).unwrap();
                assert_eq!(compiled, interpreted, "{} on ({a},{b})", pmtd.summary());
                let columnar = plan
                    .answer_columnar(&pre, &refs(&t_views), &req, &mut col)
                    .unwrap();
                assert_eq!(columnar, interpreted, "columnar {} on ({a},{b})", pmtd.summary());
            }
        }
    }

    #[test]
    fn static_t_views_fold_into_the_plan() {
        // Declaring every T-view static must hoist all reductions over
        // them (folded semijoins, prebuilt key sets / join indexes, a
        // static root join) without changing a single answer — and the
        // folded plan must accept requests that omit the static content
        // entirely.
        let (cqap, pmtds) = pmtd_families::pmtds_3reach_fig1().unwrap();
        let g = Graph::random(30, 130, 9);
        let db = g.as_path_database(3);
        let mut scratch = PlanScratch::new();
        let mut col = ColumnarScratch::new();
        for pmtd in &pmtds[..2] {
            let oy = OnlineYannakakis::new(pmtd.clone());
            let (pre, t_views) = views_for(pmtd, &cqap, &db);
            assert!(!t_views.is_empty());
            let plain = oy.compile(&pre, &t_schemas(&t_views)).unwrap();
            let folded = oy
                .compile_with_statics(&pre, &t_schemas(&t_views), &refs(&t_views))
                .unwrap();
            for (a, b) in [(0u64, 1u64), (3, 7), (12, 4), (1, 1)] {
                let req = AccessRequest::single(cqap.access(), &[a, b]).unwrap();
                let expected = plain
                    .answer_with(&pre, &refs(&t_views), &req, &mut scratch)
                    .unwrap();
                // Static T-views may be omitted per request...
                assert_eq!(
                    folded.answer_with(&pre, &[], &req, &mut scratch).unwrap(),
                    expected,
                    "folded rows {} on ({a},{b})",
                    pmtd.summary()
                );
                // ...or passed anyway (validated, not read), on both
                // execution paths.
                assert_eq!(
                    folded
                        .answer_with(&pre, &refs(&t_views), &req, &mut scratch)
                        .unwrap(),
                    expected
                );
                assert_eq!(
                    folded.answer_columnar(&pre, &[], &req, &mut col).unwrap(),
                    expected,
                    "folded columnar {} on ({a},{b})",
                    pmtd.summary()
                );
            }
        }
        // Partially static: only the root T-view declared static on the
        // pure-T chain PMTD. Its dynamic child semijoin-reduces it per
        // request, so the plan prebuilds an index over the static parent
        // and probes it with the (small) child keys.
        let pmtd = &pmtds[0]; // (T134, T123): node 0 = root T134
        let oy = OnlineYannakakis::new(pmtd.clone());
        let (pre, t_views) = views_for(pmtd, &cqap, &db);
        let root_node = pmtd.td().root();
        let root_static: Vec<(usize, &Relation)> = t_views
            .iter()
            .filter(|(n, _)| *n == root_node)
            .map(|(n, r)| (*n, r))
            .collect();
        assert_eq!(root_static.len(), 1);
        let leaf_views: Vec<(usize, &Relation)> = t_views
            .iter()
            .filter(|(n, _)| *n != root_node)
            .map(|(n, r)| (*n, r))
            .collect();
        let plain = oy.compile(&pre, &t_schemas(&t_views)).unwrap();
        let folded = oy
            .compile_with_statics(&pre, &t_schemas(&t_views), &root_static)
            .unwrap();
        for (a, b) in [(0u64, 1u64), (3, 7), (12, 4)] {
            let req = AccessRequest::single(cqap.access(), &[a, b]).unwrap();
            let expected = plain
                .answer_with(&pre, &refs(&t_views), &req, &mut scratch)
                .unwrap();
            assert_eq!(
                folded
                    .answer_with(&pre, &leaf_views, &req, &mut scratch)
                    .unwrap(),
                expected,
                "static-parent rows on ({a},{b})"
            );
            assert_eq!(
                folded
                    .answer_columnar(&pre, &leaf_views, &req, &mut col)
                    .unwrap(),
                expected,
                "static-parent columnar on ({a},{b})"
            );
        }

        // Static content with the wrong schema is rejected at compile.
        let bad = Relation::binary("bad", 0, 1, [(1, 2)]);
        let statics = vec![(t_views[0].0, &bad)];
        assert!(oy
            .compile_with_statics(&pre, &t_schemas(&t_views), &statics)
            .is_err());
    }

    #[test]
    fn compiled_validation_matches_interpreted() {
        let (cqap, pmtds) = pmtd_families::pmtds_3reach_fig1().unwrap();
        let middle = &pmtds[1];
        let g = Graph::random(20, 60, 43);
        let db = g.as_path_database(3);
        let oy = OnlineYannakakis::new(middle.clone());
        let (pre, t_views) = views_for(middle, &cqap, &db);
        let plan = oy.compile(&pre, &t_schemas(&t_views)).unwrap();
        let mut scratch = PlanScratch::new();

        let req = AccessRequest::single(cqap.access(), &[0, 1]).unwrap();
        // Missing T-view.
        assert!(plan.answer_with(&pre, &[], &req, &mut scratch).is_err());
        // Wrong access pattern.
        let bad_req =
            AccessRequest::single(cqap_common::vars![1, 2], &[0, 1]).unwrap();
        assert!(plan
            .answer_with(&pre, &refs(&t_views), &bad_req, &mut scratch)
            .is_err());
        // Supplying content for a materialized node.
        let wrong_phase = vec![(
            1usize,
            Relation::from_tuples("x", Schema::of([0, 2]), std::iter::empty()).unwrap(),
        )];
        assert!(plan
            .answer_with(&pre, &refs(&wrong_phase), &req, &mut scratch)
            .is_err());
    }

    #[test]
    fn reordered_t_views_are_normalized() {
        let (cqap, pmtds) = pmtd_families::pmtds_3reach_fig1().unwrap();
        let middle = &pmtds[1]; // (T134, S13)
        let g = Graph::random(30, 120, 11);
        let db = g.as_path_database(3);
        let oy = OnlineYannakakis::new(middle.clone());
        let (pre, t_views) = views_for(middle, &cqap, &db);
        let plan = oy.compile(&pre, &t_schemas(&t_views)).unwrap();
        let mut scratch = PlanScratch::new();

        // Reverse every T-view's column order: answers must not change,
        // on the row and the columnar path alike.
        let reversed: Vec<(usize, Relation)> = t_views
            .iter()
            .map(|(n, r)| {
                let mut vars: Vec<_> = r.schema().vars().to_vec();
                vars.reverse();
                (*n, r.reorder(&Schema::of(vars)).unwrap())
            })
            .collect();
        let req = AccessRequest::single(cqap.access(), &[0, 1]).unwrap();
        let expected = oy.answer(&pre, &t_views, &req).unwrap();
        assert_eq!(
            plan.answer_with(&pre, &refs(&reversed), &req, &mut scratch).unwrap(),
            expected
        );
        let mut col = ColumnarScratch::new();
        assert_eq!(
            plan.answer_columnar(&pre, &refs(&reversed), &req, &mut col)
                .unwrap(),
            expected
        );
    }

    #[test]
    fn empty_access_pattern_plan() {
        let q = cqap_query::families::triangle_edge();
        let single = cqap_decomp::TreeDecomposition::single(cqap_common::vars![1, 2, 3]);
        let pmtd = Pmtd::for_cqap(single, [0], &q).unwrap();
        let mut db = Database::new();
        db.add_relation(Relation::binary(
            "R",
            0,
            1,
            [(1, 2), (2, 3), (3, 1), (3, 4)],
        ))
        .unwrap();
        let oy = OnlineYannakakis::new(pmtd.clone());
        let (pre, t_views) = views_for(&pmtd, &q, &db);
        assert!(t_views.is_empty());
        let plan = oy.compile(&pre, &[]).unwrap();
        let mut scratch = PlanScratch::new();
        let req = AccessRequest::new(VarSet::EMPTY, vec![Tuple::empty()]).unwrap();
        let ans = plan.answer_with(&pre, &[], &req, &mut scratch).unwrap();
        assert_eq!(ans, oy.answer(&pre, &[], &req).unwrap());
        assert_eq!(ans.len(), 3);
        let mut col = ColumnarScratch::new();
        assert_eq!(plan.answer_columnar(&pre, &[], &req, &mut col).unwrap(), ans);
        // The empty request is the "false" binding: no answers.
        let empty = AccessRequest::new(VarSet::EMPTY, vec![]).unwrap();
        assert!(plan
            .answer_with(&pre, &[], &empty, &mut scratch)
            .unwrap()
            .is_empty());
        assert!(plan
            .answer_columnar(&pre, &[], &empty, &mut col)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn warm_probe_only_plan_performs_zero_dedup_inserts() {
        // The fully-materialized Figure 1 PMTD (S14): the plan is a pure
        // probe — after a warm-up request, answering must not touch the
        // relation-level dedup machinery at all.
        let (cqap, pmtds) = pmtd_families::pmtds_3reach_fig1().unwrap();
        let single = &pmtds[2];
        let g = Graph::random(60, 300, 41);
        let db = g.as_path_database(3);
        let oy = OnlineYannakakis::new(single.clone());
        let (pre, t_views) = views_for(single, &cqap, &db);
        assert!(t_views.is_empty());
        let plan = oy.compile(&pre, &[]).unwrap();
        let mut scratch = PlanScratch::new();

        let warmup = AccessRequest::single(cqap.access(), &[0, 1]).unwrap();
        plan.answer_with(&pre, &[], &warmup, &mut scratch).unwrap();

        // Expected answers computed up front: the interpreted reference
        // (and relation equality itself) uses the dedup machinery, so it
        // must stay outside the counted window.
        let pairs = [(0u64, 1u64), (5, 9), (17, 3), (2, 2)];
        let requests: Vec<AccessRequest> = pairs
            .iter()
            .map(|&(a, b)| AccessRequest::single(cqap.access(), &[a, b]).unwrap())
            .collect();
        let expected: Vec<Relation> = requests
            .iter()
            .map(|req| oy.answer(&pre, &[], req).unwrap())
            .collect();

        let before = cqap_relation::instrument::dedup_inserts();
        let answers: Vec<Relation> = requests
            .iter()
            .map(|req| plan.answer_with(&pre, &[], req, &mut scratch).unwrap())
            .collect();
        assert_eq!(
            cqap_relation::instrument::dedup_inserts(),
            before,
            "warm probe-only requests must perform zero relation-level dedup inserts"
        );
        assert_eq!(answers, expected);

        // The columnar path additionally never boxes a tuple: rows live in
        // column runs until the final (inline-width) head projection.
        let mut col = ColumnarScratch::new();
        plan.answer_columnar(&pre, &[], &warmup, &mut col).unwrap();
        let dedup_before = cqap_relation::instrument::dedup_inserts();
        let boxes_before = cqap_common::tuple::instrument::heap_boxings();
        let answers: Vec<Relation> = requests
            .iter()
            .map(|req| plan.answer_columnar(&pre, &[], req, &mut col).unwrap())
            .collect();
        assert_eq!(
            cqap_relation::instrument::dedup_inserts(),
            dedup_before,
            "warm columnar requests must perform zero relation-level dedup inserts"
        );
        assert_eq!(
            cqap_common::tuple::instrument::heap_boxings(),
            boxes_before,
            "warm columnar requests must perform zero tuple heap boxings"
        );
        assert_eq!(answers, expected);
    }
}
