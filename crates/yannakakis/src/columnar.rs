//! Columnar plan execution: the compiled online phase over
//! struct-of-arrays scratch.
//!
//! The row-compiled path ([`CompiledPlan::answer_with`]) still moves
//! row-major [`Tuple`]s: every semijoin/join step re-materializes per-row
//! keys, hashes them one row at a time, and clones whole tuples between
//! the ping-pong accumulators. Step schemas are fixed at compile time, so
//! every intermediate has a *static width* — which means the entire
//! scratch pipeline can be flat column runs instead:
//!
//! * a [`ColumnRun`] stores an accumulator as one `Vec<Val>` per column
//!   with a shared row count — filtering is a gather over row indices,
//!   and a join output is a handful of bulk column copies driven by a
//!   `(left row, right row)` pair list, never a per-row tuple clone;
//! * probe keys are hashed **in batch** before the row loop
//!   ([`ColumnRun::hash_rows_into`] folds one contiguous column at a
//!   time through [`cqap_common::hash_fold_column`]'s 8-wide
//!   `chunks_exact` kernel) and grouped by a [`KeyMemo`] so each
//!   *distinct* key probes the S-view backend a single time across all
//!   accumulator rows;
//! * backends append probe results column-wise through
//!   [`SViewProbe::probe_columns`] — the in-memory indexes scatter their
//!   bucket slices, the disk backend decodes little-endian segments
//!   straight into the columns — so probe results never round-trip
//!   through a `Tuple` at all;
//! * rows become [`Tuple`]s exactly once, at the final head projection
//!   into the answer [`Relation`]
//!   ([`cqap_relation::RelationBuilder::push_row`], inline for arity ≤ 4).
//!
//! On the warm serving path this executes a probe-only plan with **zero
//! tuple heap boxings and zero relation-level dedup inserts**
//! (counter-enforced by tests); answers are bit-for-bit identical to the
//! row-compiled and interpreted paths (proptest-enforced in
//! `crates/yannakakis/tests`).

use cqap_common::{hash_fold_column, hash_vals, CqapError, FxHashMap, Result, Tuple, Val};
use cqap_relation::{Relation, RelationBuilder};

use crate::compiled::{
    BottomUpStep, CompiledPlan, HashJoin, ProbeJoin, RootStep, StaticGroups, TopDownStep,
};
use crate::online::SViewProbe;
use cqap_query::AccessRequest;

/// A struct-of-arrays tuple run: one `Vec<Val>` per column, one shared
/// row count. The unit of storage of the columnar execution path — plan
/// accumulators, probe-result pools and per-request T-views are all
/// `ColumnRun`s.
///
/// A run keeps its column capacity across [`ColumnRun::reset`]s, so a
/// warm worker re-executes a plan without allocating.
#[derive(Clone, Debug, Default)]
pub struct ColumnRun {
    width: usize,
    rows: usize,
    /// `cols[..width]` are active; any extra vectors are retained capacity
    /// from earlier, wider uses.
    cols: Vec<Vec<Val>>,
}

impl ColumnRun {
    /// An empty run of width 0.
    pub fn new() -> Self {
        ColumnRun::default()
    }

    /// Clears the run and sets its width, retaining column capacity.
    pub fn reset(&mut self, width: usize) {
        self.width = width;
        self.rows = 0;
        while self.cols.len() < width {
            self.cols.push(Vec::new());
        }
        for col in &mut self.cols[..width] {
            col.clear();
        }
    }

    /// Number of columns.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether the run holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Column `j` as a value slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[Val] {
        &self.cols[j]
    }

    /// Appends one row given as a value slice (length must equal the
    /// width).
    #[inline]
    pub fn push_row(&mut self, vals: &[Val]) {
        debug_assert_eq!(vals.len(), self.width);
        for (col, &v) in self.cols.iter_mut().zip(vals) {
            col.push(v);
        }
        self.rows += 1;
    }

    /// Appends a slice of row tuples — the scatter used by the in-memory
    /// backend's bucket probes and by loading a row [`Relation`] whose
    /// column order already matches ([`Tuple::scatter_into`] per row).
    pub fn extend_from_tuples(&mut self, tuples: &[Tuple]) {
        let cols = &mut self.cols[..self.width];
        for t in tuples {
            t.scatter_into(cols);
        }
        self.rows += tuples.len();
    }

    /// Appends `n` rows column-at-a-time: `f(j, col)` must push exactly
    /// `n` values onto column `j`. The column-direct decode entry point of
    /// the cold tier (and any other producer that already has its data in
    /// column order).
    pub fn append_columns(&mut self, n: usize, mut f: impl FnMut(usize, &mut Vec<Val>)) {
        for j in 0..self.width {
            f(j, &mut self.cols[j]);
            debug_assert_eq!(self.cols[j].len(), self.rows + n, "column {j} out of step");
        }
        self.rows += n;
    }

    /// Bulk row selection: appends `src`'s rows at the given indices
    /// (column-at-a-time). Widths must match.
    pub fn gather(&mut self, src: &ColumnRun, rows: &[u32]) {
        debug_assert_eq!(self.width, src.width);
        for j in 0..self.width {
            let from = &src.cols[j];
            self.cols[j].extend(rows.iter().map(|&r| from[r as usize]));
        }
        self.rows += rows.len();
    }

    /// Join emission by bulk column copies: for each `(left, right)` row
    /// pair, the output row is `left`'s full row followed by `right`'s
    /// `appended` columns. `self` must be reset to
    /// `left.width() + appended.len()`.
    pub fn emit_join(
        &mut self,
        left: &ColumnRun,
        right: &ColumnRun,
        appended: &[usize],
        pairs: &[(u32, u32)],
    ) {
        debug_assert_eq!(self.width, left.width + appended.len());
        for j in 0..left.width {
            let from = &left.cols[j];
            self.cols[j].extend(pairs.iter().map(|&(l, _)| from[l as usize]));
        }
        for (k, &p) in appended.iter().enumerate() {
            let from = &right.cols[p];
            self.cols[left.width + k].extend(pairs.iter().map(|&(_, r)| from[r as usize]));
        }
        self.rows += pairs.len();
    }

    /// Appends one join output row whose right side is a row slice (the
    /// static-join and T-view-program case, where the build side lives in
    /// prebuilt tuple buckets).
    #[inline]
    pub fn push_join_row(&mut self, left: &ColumnRun, l: usize, right: &[Val], appended: &[usize]) {
        debug_assert_eq!(self.width, left.width + appended.len());
        for j in 0..left.width {
            self.cols[j].push(left.cols[j][l]);
        }
        for (k, &p) in appended.iter().enumerate() {
            self.cols[left.width + k].push(right[p]);
        }
        self.rows += 1;
    }

    /// Writes row `r` projected onto `positions` into `buf` (cleared
    /// first) — the columnar mirror of [`Tuple::project_into`].
    #[inline]
    pub fn project_row_into(&self, r: usize, positions: &[usize], buf: &mut Vec<Val>) {
        buf.clear();
        buf.extend(positions.iter().map(|&p| self.cols[p][r]));
    }

    /// Writes the full row `r` into `buf` (cleared first).
    #[inline]
    pub fn row_into(&self, r: usize, buf: &mut Vec<Val>) {
        buf.clear();
        buf.extend(self.cols[..self.width].iter().map(|col| col[r]));
    }

    /// Batch key hashing: fills `hashes` with `hash_vals` of every row's
    /// projection onto `positions`, without materializing any row. Each
    /// position folds its entire contiguous column into the running
    /// hashes ([`cqap_common::hash_fold_column`]'s 8-wide `chunks_exact`
    /// loop), so the per-row gather-then-hash of the scalar path becomes
    /// `positions.len()` sequential column sweeps the compiler can
    /// vectorize.
    pub fn hash_rows_into(&self, positions: &[usize], hashes: &mut Vec<u64>) {
        hashes.clear();
        hashes.resize(self.rows, 0);
        for &p in positions {
            hash_fold_column(hashes, &self.cols[p]);
        }
    }
}

/// A hash-grouping memo over variable-width value-slice keys, keyed by a
/// **caller-supplied 64-bit hash** plus a slice check.
///
/// This is the probe memo of the compiled execution paths: a hot loop
/// projects a key into a reused buffer, hashes it once with
/// [`cqap_common::hash_vals`], and then uses that hash for both lookup
/// and insertion — a map keyed by the slice (or by a key `Tuple`) would
/// re-hash it on every operation. Key bytes are copied into one pooled
/// buffer; collisions chain through an index list, so the memo performs
/// no per-key allocation once warm.
#[derive(Debug, Default)]
pub struct KeyMemo<P> {
    /// hash → index of the first entry in the chain.
    heads: FxHashMap<u64, u32>,
    entries: Vec<MemoEntry<P>>,
    /// Pooled key values; entries address slices of it.
    keys: Vec<Val>,
}

#[derive(Debug)]
struct MemoEntry<P> {
    start: u32,
    len: u32,
    /// Next entry with the same hash, or `u32::MAX`.
    next: u32,
    payload: P,
}

impl<P> KeyMemo<P> {
    /// Empties the memo, retaining capacity.
    pub fn clear(&mut self) {
        self.heads.clear();
        self.entries.clear();
        self.keys.clear();
    }

    #[inline]
    fn key_of(&self, e: &MemoEntry<P>) -> &[Val] {
        &self.keys[e.start as usize..(e.start + e.len) as usize]
    }

    #[inline]
    fn find(&self, hash: u64, key: &[Val]) -> Option<u32> {
        let mut at = *self.heads.get(&hash)?;
        loop {
            let e = &self.entries[at as usize];
            if self.key_of(e) == key {
                return Some(at);
            }
            if e.next == u32::MAX {
                return None;
            }
            at = e.next;
        }
    }

    /// The payload stored under `key`, if present. `hash` must be
    /// `hash_vals(key)`.
    #[inline]
    pub fn get(&self, hash: u64, key: &[Val]) -> Option<&P> {
        self.find(hash, key)
            .map(|at| &self.entries[at as usize].payload)
    }

    /// Mutable access to the payload stored under `key`, if present.
    #[inline]
    pub fn get_mut(&mut self, hash: u64, key: &[Val]) -> Option<&mut P> {
        self.find(hash, key)
            .map(|at| &mut self.entries[at as usize].payload)
    }

    /// Inserts `payload` under `key`, which must not be present yet (the
    /// memo usage pattern is get-miss-then-insert).
    pub fn insert(&mut self, hash: u64, key: &[Val], payload: P) {
        debug_assert!(self.find(hash, key).is_none(), "key inserted twice");
        let start = self.keys.len() as u32;
        self.keys.extend_from_slice(key);
        let idx = self.entries.len() as u32;
        let next = self.heads.insert(hash, idx).unwrap_or(u32::MAX);
        self.entries.push(MemoEntry {
            start,
            len: key.len() as u32,
            next,
            payload,
        });
    }
}

impl KeyMemo<()> {
    /// Set semantics: inserts `key` and reports whether it was new.
    #[inline]
    pub fn insert_if_absent(&mut self, hash: u64, key: &[Val]) -> bool {
        if self.find(hash, key).is_some() {
            false
        } else {
            self.insert(hash, key, ());
            true
        }
    }
}

/// Reusable per-worker scratch for the columnar execution path
/// ([`CompiledPlan::answer_columnar`]). All buffers retain capacity
/// across requests; one scratch per serving worker.
#[derive(Debug, Default)]
pub struct ColumnarScratch {
    /// The two ping-pong accumulators.
    acc: ColumnRun,
    next: ColumnRun,
    /// Pooled columnar probe results; `ranges` addresses row ranges of it.
    pool: ColumnRun,
    /// Probe memo: key hash → `(start, end)` row range in `pool`.
    ranges: KeyMemo<(u32, u32)>,
    /// Semijoin probe memo: key hash → hit.
    semi: KeyMemo<bool>,
    /// Per-step dedup set over projected rows.
    dedup: KeyMemo<()>,
    /// Hash-join build memo: key hash → head row of the chain.
    build: KeyMemo<u32>,
    /// Hash-join row chains (`build_next[r]` = next row with `r`'s key).
    build_next: Vec<u32>,
    /// Batch key-hash buffer (`hashes[r]` = hash of row `r`'s key).
    hashes: Vec<u64>,
    /// Reused key-projection buffer.
    key_vals: Vec<Val>,
    /// Reused full-row buffer.
    row_buf: Vec<Val>,
    /// Selected row indices (filter kernels).
    sel: Vec<u32>,
    /// `(left row, right row)` pair list (join kernels).
    pairs: Vec<(u32, u32)>,
    /// Recycled runs for owned T-view slots.
    run_pool: Vec<ColumnRun>,
}

impl ColumnarScratch {
    /// A fresh scratch arena (all buffers empty).
    pub fn new() -> Self {
        ColumnarScratch::default()
    }

    fn take_run(&mut self) -> ColumnRun {
        self.run_pool.pop().unwrap_or_default()
    }

    fn recycle_run(&mut self, run: ColumnRun) {
        self.run_pool.push(run);
    }

    fn recycle_slot(&mut self, slot: ColSlot<'_>) {
        if let ColSlot::Owned(run) = slot {
            self.run_pool.push(run);
        }
    }
}

/// A T-view's columns during columnar plan execution.
enum ColSlot<'a> {
    Empty,
    Borrowed(&'a ColumnRun),
    Owned(ColumnRun),
}

impl ColSlot<'_> {
    fn run(&self) -> &ColumnRun {
        match self {
            // Validation guarantees every slot a step reads is filled.
            ColSlot::Empty => unreachable!("validated T-view present"),
            ColSlot::Borrowed(run) => run,
            ColSlot::Owned(run) => run,
        }
    }
}

impl CompiledPlan {
    /// Executes the plan column-at-a-time: same inputs, same validation
    /// failures and same answers as [`CompiledPlan::answer_with`], with
    /// all intermediate state in flat column runs (see the module docs).
    ///
    /// The supplied T-view relations are scattered into columns up front
    /// (reordering on a slow path if the column order differs from the
    /// compile-time schema); the compiled drivers avoid even that by
    /// producing columns directly and calling
    /// [`CompiledPlan::answer_from_columns`].
    ///
    /// # Errors
    /// The same validation failures as the row path, plus whatever
    /// storage-level errors the backend's probes surface.
    pub fn answer_columnar<V: SViewProbe>(
        &self,
        views: &V,
        t_views: &[(usize, &Relation)],
        request: &AccessRequest,
        scratch: &mut ColumnarScratch,
    ) -> Result<Relation> {
        self.check_access(request)?;
        self.check_backend(views)?;
        let mut slots: Vec<ColSlot> = (0..self.num_nodes).map(|_| ColSlot::Empty).collect();
        for (node, rel) in t_views {
            self.check_t_view(*node, rel)?;
            if self.static_node[*node] {
                continue;
            }
            let expected = self.t_schema[*node].as_ref().expect("validated at compile");
            let mut run = scratch.take_run();
            run.reset(expected.arity());
            if rel.schema() == expected {
                run.extend_from_tuples(rel.tuples());
            } else {
                let positions = rel.schema().positions_of(expected.vars())?;
                for t in rel.iter() {
                    t.project_into(&positions, &mut scratch.row_buf);
                    run.push_row(&scratch.row_buf);
                }
            }
            slots[*node] = ColSlot::Owned(run);
        }
        self.check_missing_slots(&slots)?;
        let result = self.run_columnar(views, request, &mut slots, scratch);
        for slot in slots {
            scratch.recycle_slot(slot);
        }
        result
    }

    /// [`CompiledPlan::answer_columnar`] for callers that already hold the
    /// T-views as column runs in the **compile-time column order** — the
    /// compiled drivers produce their T-view programs' output directly as
    /// columns, so no row form ever exists (and hand over an iterator, so
    /// no per-request collection exists either). Static (plan-owned)
    /// nodes must be omitted; widths are validated against the compiled
    /// schemas.
    ///
    /// # Errors
    /// The same validation failures as the row path, plus backend storage
    /// errors.
    pub fn answer_from_columns<'a, V: SViewProbe>(
        &self,
        views: &V,
        t_cols: impl IntoIterator<Item = (usize, &'a ColumnRun)>,
        request: &AccessRequest,
        scratch: &mut ColumnarScratch,
    ) -> Result<Relation> {
        self.check_access(request)?;
        self.check_backend(views)?;
        let mut slots: Vec<ColSlot> = (0..self.num_nodes).map(|_| ColSlot::Empty).collect();
        for (node, run) in t_cols {
            if node >= self.num_nodes || self.materialized[node] || self.static_node[node] {
                return Err(CqapError::InvalidPmtd(format!(
                    "node {node} does not take per-request T-view columns"
                )));
            }
            let expected = self.t_schema[node].as_ref().expect("validated at compile");
            if run.width() != expected.arity() {
                return Err(CqapError::SchemaMismatch {
                    expected: format!("{expected}"),
                    found: format!("column run of width {}", run.width()),
                });
            }
            slots[node] = ColSlot::Borrowed(run);
        }
        self.check_missing_slots(&slots)?;
        let result = self.run_columnar(views, request, &mut slots, scratch);
        for slot in slots {
            scratch.recycle_slot(slot);
        }
        result
    }

    fn check_missing_slots(&self, slots: &[ColSlot<'_>]) -> Result<()> {
        for t in 0..self.num_nodes {
            if !self.materialized[t]
                && !self.static_node[t]
                && matches!(slots[t], ColSlot::Empty)
            {
                return Err(CqapError::InvalidPmtd(format!(
                    "missing T-view for node {t}"
                )));
            }
        }
        Ok(())
    }

    fn run_columnar<V: SViewProbe>(
        &self,
        views: &V,
        request: &AccessRequest,
        slots: &mut [ColSlot<'_>],
        scratch: &mut ColumnarScratch,
    ) -> Result<Relation> {
        // Bottom-up semijoin-reduce over column runs: each filter gathers
        // the surviving rows column-at-a-time.
        for step in &self.bottom_up {
            match step {
                BottomUpStep::ProbeSemi {
                    child,
                    parent,
                    key_positions,
                } => {
                    scratch.semi.clear();
                    scratch.sel.clear();
                    let src = std::mem::replace(&mut slots[*parent], ColSlot::Empty);
                    {
                        let cr = src.run();
                        cr.hash_rows_into(key_positions, &mut scratch.hashes);
                        for r in 0..cr.rows() {
                            cr.project_row_into(r, key_positions, &mut scratch.key_vals);
                            let hash = scratch.hashes[r];
                            let hit = match scratch.semi.get(hash, &scratch.key_vals) {
                                Some(&hit) => hit,
                                None => {
                                    let key = Tuple::from_slice(&scratch.key_vals);
                                    let hit = views.contains(*child, &key)?;
                                    scratch.semi.insert(hash, &scratch.key_vals, hit);
                                    hit
                                }
                            };
                            if hit {
                                scratch.sel.push(r as u32);
                            }
                        }
                    }
                    let filtered = gather_selected(scratch, &src);
                    scratch.recycle_slot(src);
                    slots[*parent] = ColSlot::Owned(filtered);
                }
                BottomUpStep::HashSemi {
                    child,
                    parent,
                    child_key,
                    parent_key,
                } => {
                    scratch.dedup.clear();
                    {
                        let cr = slots[*child].run();
                        cr.hash_rows_into(child_key, &mut scratch.hashes);
                        for r in 0..cr.rows() {
                            cr.project_row_into(r, child_key, &mut scratch.key_vals);
                            let hash = scratch.hashes[r];
                            scratch.dedup.insert_if_absent(hash, &scratch.key_vals);
                        }
                    }
                    scratch.sel.clear();
                    let src = std::mem::replace(&mut slots[*parent], ColSlot::Empty);
                    {
                        let cr = src.run();
                        cr.hash_rows_into(parent_key, &mut scratch.hashes);
                        for r in 0..cr.rows() {
                            cr.project_row_into(r, parent_key, &mut scratch.key_vals);
                            let hash = scratch.hashes[r];
                            if scratch.dedup.get(hash, &scratch.key_vals).is_some() {
                                scratch.sel.push(r as u32);
                            }
                        }
                    }
                    let filtered = gather_selected(scratch, &src);
                    scratch.recycle_slot(src);
                    slots[*parent] = ColSlot::Owned(filtered);
                }
                BottomUpStep::HashSemiStaticChild {
                    parent,
                    parent_key,
                    keys,
                } => {
                    scratch.sel.clear();
                    let src = std::mem::replace(&mut slots[*parent], ColSlot::Empty);
                    {
                        let cr = src.run();
                        for r in 0..cr.rows() {
                            cr.project_row_into(r, parent_key, &mut scratch.key_vals);
                            if keys.contains(scratch.key_vals.as_slice()) {
                                scratch.sel.push(r as u32);
                            }
                        }
                    }
                    let filtered = gather_selected(scratch, &src);
                    scratch.recycle_slot(src);
                    slots[*parent] = ColSlot::Owned(filtered);
                }
                BottomUpStep::HashSemiStaticParent {
                    child,
                    parent,
                    child_key,
                    parent_arity,
                    index,
                } => {
                    scratch.dedup.clear();
                    let mut filtered = scratch.take_run();
                    filtered.reset(*parent_arity);
                    {
                        let cr = slots[*child].run();
                        cr.hash_rows_into(child_key, &mut scratch.hashes);
                        for r in 0..cr.rows() {
                            cr.project_row_into(r, child_key, &mut scratch.key_vals);
                            let hash = scratch.hashes[r];
                            if scratch.dedup.insert_if_absent(hash, &scratch.key_vals) {
                                if let Some(bucket) = index.get(scratch.key_vals.as_slice()) {
                                    filtered.extend_from_tuples(bucket);
                                }
                            }
                        }
                    }
                    let old = std::mem::replace(&mut slots[*parent], ColSlot::Owned(filtered));
                    scratch.recycle_slot(old);
                }
                BottomUpStep::ProjectChild { node, project } => {
                    scratch.dedup.clear();
                    let src = std::mem::replace(&mut slots[*node], ColSlot::Empty);
                    let mut projected = scratch.take_run();
                    projected.reset(project.positions.len());
                    {
                        let cr = src.run();
                        cr.hash_rows_into(&project.positions, &mut scratch.hashes);
                        for r in 0..cr.rows() {
                            cr.project_row_into(r, &project.positions, &mut scratch.row_buf);
                            let hash = scratch.hashes[r];
                            if scratch.dedup.insert_if_absent(hash, &scratch.row_buf) {
                                projected.push_row(&scratch.row_buf);
                            }
                        }
                    }
                    scratch.recycle_slot(src);
                    slots[*node] = ColSlot::Owned(projected);
                }
            }
        }

        // Seed the accumulator with the (deduplicated) request bindings.
        let mut acc = std::mem::take(&mut scratch.acc);
        let mut next = std::mem::take(&mut scratch.next);
        acc.reset(self.access.len());
        next.reset(0);
        if self.access.is_empty() {
            if !request.is_empty() {
                acc.push_row(&[]);
            }
        } else if request.len() <= 1 {
            for t in request.tuples() {
                acc.push_row(t.as_slice());
            }
        } else {
            scratch.dedup.clear();
            for t in request.tuples() {
                let hash = hash_vals(t.as_slice());
                if scratch.dedup.insert_if_absent(hash, t.as_slice()) {
                    acc.push_row(t.as_slice());
                }
            }
        }

        // Root reduction.
        match &self.root {
            RootStep::Probe { node, join } => {
                self.exec_probe_join_columnar(views, *node, join, &acc, &mut next, scratch)?;
                std::mem::swap(&mut acc, &mut next);
            }
            RootStep::Join {
                node,
                project,
                join,
            } => {
                scratch.dedup.clear();
                let src = std::mem::replace(&mut slots[*node], ColSlot::Empty);
                let mut reduced = scratch.take_run();
                reduced.reset(project.positions.len());
                {
                    let cr = src.run();
                    cr.hash_rows_into(&project.positions, &mut scratch.hashes);
                    for r in 0..cr.rows() {
                        cr.project_row_into(r, &project.positions, &mut scratch.row_buf);
                        let hash = scratch.hashes[r];
                        if scratch.dedup.insert_if_absent(hash, &scratch.row_buf) {
                            reduced.push_row(&scratch.row_buf);
                        }
                    }
                }
                scratch.recycle_slot(src);
                exec_hash_join_columnar(join, &acc, &reduced, &mut next, scratch);
                scratch.recycle_run(reduced);
                std::mem::swap(&mut acc, &mut next);
            }
            RootStep::JoinStatic { join, groups } => {
                exec_static_join_columnar(join, groups, &acc, &mut next, &mut scratch.key_vals);
                std::mem::swap(&mut acc, &mut next);
            }
        }

        // Top-down joins over the kept nodes.
        for step in &self.top_down {
            match step {
                TopDownStep::Probe { node, join } => {
                    self.exec_probe_join_columnar(views, *node, join, &acc, &mut next, scratch)?;
                }
                TopDownStep::Join { node, join } => {
                    let src = std::mem::replace(&mut slots[*node], ColSlot::Empty);
                    exec_hash_join_columnar(join, &acc, src.run(), &mut next, scratch);
                    slots[*node] = src;
                }
                TopDownStep::JoinStatic { join, groups } => {
                    exec_static_join_columnar(join, groups, &acc, &mut next, &mut scratch.key_vals);
                }
            }
            std::mem::swap(&mut acc, &mut next);
        }

        // Materialize the answer: the only place a row becomes a Tuple.
        // Every path above preserves distinctness, so the builder never
        // touches the dedup machinery.
        let out = match &self.final_project {
            None => {
                let mut builder =
                    RelationBuilder::distinct("Q_ans", self.output_schema().clone());
                for r in 0..acc.rows() {
                    acc.row_into(r, &mut scratch.row_buf);
                    builder.push_row(&scratch.row_buf);
                }
                builder.finish()
            }
            Some(project) => {
                scratch.dedup.clear();
                let mut builder = RelationBuilder::distinct("Q_ans", project.schema.clone());
                acc.hash_rows_into(&project.positions, &mut scratch.hashes);
                for r in 0..acc.rows() {
                    acc.project_row_into(r, &project.positions, &mut scratch.row_buf);
                    let hash = scratch.hashes[r];
                    if scratch.dedup.insert_if_absent(hash, &scratch.row_buf) {
                        builder.push_row(&scratch.row_buf);
                    }
                }
                builder.finish()
            }
        };
        scratch.acc = acc;
        scratch.next = next;
        Ok(out)
    }

    /// `acc_out = acc_in ⋈ view(node)` by probing the backend on the link
    /// variables: keys are gathered and hashed once per row, each distinct
    /// key probes the backend a single time (results pooled column-wise in
    /// `scratch.pool`), and the output is emitted by bulk column copies
    /// over the matched `(row, pool row)` pairs.
    fn exec_probe_join_columnar<V: SViewProbe>(
        &self,
        views: &V,
        node: usize,
        join: &ProbeJoin,
        acc_in: &ColumnRun,
        acc_out: &mut ColumnRun,
        scratch: &mut ColumnarScratch,
    ) -> Result<()> {
        scratch.ranges.clear();
        scratch.pool.reset(join.rel_arity);
        scratch.pairs.clear();
        acc_in.hash_rows_into(&join.key_positions, &mut scratch.hashes);
        for l in 0..acc_in.rows() {
            acc_in.project_row_into(l, &join.key_positions, &mut scratch.key_vals);
            let hash = scratch.hashes[l];
            let (start, end) = match scratch.ranges.get(hash, &scratch.key_vals) {
                Some(&range) => range,
                None => {
                    let key = Tuple::from_slice(&scratch.key_vals);
                    let start = scratch.pool.rows() as u32;
                    views.probe_columns(node, &key, &mut scratch.pool)?;
                    let end = scratch.pool.rows() as u32;
                    scratch.ranges.insert(hash, &scratch.key_vals, (start, end));
                    (start, end)
                }
            };
            if join.left_extra.is_empty() {
                for p in start..end {
                    scratch.pairs.push((l as u32, p));
                }
            } else {
                'matches: for p in start..end {
                    for (&a, &b) in join.left_extra.iter().zip(&join.rel_extra) {
                        if acc_in.col(a)[l] != scratch.pool.col(b)[p as usize] {
                            continue 'matches;
                        }
                    }
                    scratch.pairs.push((l as u32, p));
                }
            }
        }
        acc_out.reset(acc_in.width() + join.appended.len());
        acc_out.emit_join(acc_in, &scratch.pool, &join.appended, &scratch.pairs);
        Ok(())
    }
}

/// Gathers `scratch.sel` rows of `src` into a pooled run (the shared tail
/// of every columnar filter kernel).
fn gather_selected(scratch: &mut ColumnarScratch, src: &ColSlot<'_>) -> ColumnRun {
    let mut filtered = scratch.take_run();
    let cr = src.run();
    filtered.reset(cr.width());
    filtered.gather(cr, &scratch.sel);
    filtered
}

/// `acc_out = acc_in ⋈ build` on all shared variables: the build side's
/// rows are chained into per-key groups through the hash-cached memo (no
/// per-bucket vector is ever allocated), then the accumulator probes the
/// chains and the output is emitted by bulk column copies.
fn exec_hash_join_columnar(
    join: &HashJoin,
    acc_in: &ColumnRun,
    build: &ColumnRun,
    acc_out: &mut ColumnRun,
    scratch: &mut ColumnarScratch,
) {
    scratch.build.clear();
    scratch.build_next.clear();
    scratch.build_next.resize(build.rows(), u32::MAX);
    build.hash_rows_into(&join.build_key, &mut scratch.hashes);
    for r in 0..build.rows() {
        build.project_row_into(r, &join.build_key, &mut scratch.key_vals);
        let hash = scratch.hashes[r];
        match scratch.build.get_mut(hash, &scratch.key_vals) {
            Some(head) => {
                scratch.build_next[r] = *head;
                *head = r as u32;
            }
            None => scratch.build.insert(hash, &scratch.key_vals, r as u32),
        }
    }
    scratch.pairs.clear();
    acc_in.hash_rows_into(&join.probe_key, &mut scratch.hashes);
    for l in 0..acc_in.rows() {
        acc_in.project_row_into(l, &join.probe_key, &mut scratch.key_vals);
        let hash = scratch.hashes[l];
        if let Some(&head) = scratch.build.get(hash, &scratch.key_vals) {
            let mut r = head;
            while r != u32::MAX {
                scratch.pairs.push((l as u32, r));
                r = scratch.build_next[r as usize];
            }
        }
    }
    acc_out.reset(acc_in.width() + join.appended.len());
    acc_out.emit_join(acc_in, build, &join.appended, &scratch.pairs);
}

/// `acc_out = acc_in ⋈ static side` through the compile-time join index:
/// probe with a borrowed key slice, emit matched rows from the prebuilt
/// tuple buckets.
fn exec_static_join_columnar(
    join: &HashJoin,
    groups: &StaticGroups,
    acc_in: &ColumnRun,
    acc_out: &mut ColumnRun,
    key_vals: &mut Vec<Val>,
) {
    acc_out.reset(acc_in.width() + join.appended.len());
    for l in 0..acc_in.rows() {
        acc_in.project_row_into(l, &join.probe_key, key_vals);
        if let Some(bucket) = groups.get(key_vals.as_slice()) {
            for rt in bucket {
                acc_out.push_join_row(acc_in, l, rt.as_slice(), &join.appended);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_run_basics() {
        let mut run = ColumnRun::new();
        run.reset(3);
        run.push_row(&[1, 2, 3]);
        run.push_row(&[4, 5, 6]);
        assert_eq!(run.rows(), 2);
        assert_eq!(run.col(1), &[2, 5]);

        let mut buf = Vec::new();
        run.project_row_into(1, &[2, 0], &mut buf);
        assert_eq!(buf, vec![6, 4]);
        run.row_into(0, &mut buf);
        assert_eq!(buf, vec![1, 2, 3]);

        // Reset to a narrower width keeps capacity but clears content.
        run.reset(1);
        assert!(run.is_empty());
        assert_eq!(run.width(), 1);
        run.extend_from_tuples(&[Tuple::unary(9), Tuple::unary(8)]);
        assert_eq!(run.col(0), &[9, 8]);
    }

    #[test]
    fn column_run_gather_and_emit() {
        let mut src = ColumnRun::new();
        src.reset(2);
        for i in 0..5u64 {
            src.push_row(&[i, 10 * i]);
        }
        let mut out = ColumnRun::new();
        out.reset(2);
        out.gather(&src, &[4, 0, 2]);
        assert_eq!(out.col(0), &[4, 0, 2]);
        assert_eq!(out.col(1), &[40, 0, 20]);

        let mut right = ColumnRun::new();
        right.reset(3);
        right.push_row(&[7, 8, 9]);
        right.push_row(&[17, 18, 19]);
        let mut joined = ColumnRun::new();
        joined.reset(2 + 1);
        joined.emit_join(&out, &right, &[2], &[(0, 1), (2, 0)]);
        assert_eq!(joined.col(0), &[4, 2]);
        assert_eq!(joined.col(1), &[40, 20]);
        assert_eq!(joined.col(2), &[19, 9]);

        joined.push_join_row(&out, 1, &[100, 200, 300], &[1]);
        assert_eq!(joined.rows(), 3);
        assert_eq!(joined.col(2), &[19, 9, 200]);
    }

    #[test]
    fn column_run_append_columns() {
        let mut run = ColumnRun::new();
        run.reset(2);
        run.push_row(&[1, 2]);
        run.append_columns(2, |j, col| {
            col.push(10 + j as u64);
            col.push(20 + j as u64);
        });
        assert_eq!(run.rows(), 3);
        assert_eq!(run.col(0), &[1, 10, 20]);
        assert_eq!(run.col(1), &[2, 11, 21]);
    }

    #[test]
    fn batch_row_hashing_matches_scalar() {
        // hash_rows_into must agree with hash_vals over the gathered row
        // for every row — including past the 8-wide chunk boundary and
        // for permuted / repeated projections.
        let mut run = ColumnRun::new();
        run.reset(3);
        for i in 0..37u64 {
            run.push_row(&[i, i.wrapping_mul(0x9e37_79b9), 1000 - i]);
        }
        let mut hashes = Vec::new();
        let mut key = Vec::new();
        for positions in [&[0usize][..], &[2, 0], &[1, 1, 2], &[]] {
            run.hash_rows_into(positions, &mut hashes);
            assert_eq!(hashes.len(), run.rows());
            for r in 0..run.rows() {
                run.project_row_into(r, positions, &mut key);
                assert_eq!(hashes[r], hash_vals(&key), "row {r} at {positions:?}");
            }
        }
    }

    #[test]
    fn key_memo_collision_chains() {
        let mut memo: KeyMemo<u32> = KeyMemo::default();
        // Force two distinct keys onto one hash: the chain must keep them
        // apart via the slice check.
        let h = 42;
        memo.insert(h, &[1, 2], 10);
        memo.insert(h, &[3, 4], 20);
        assert_eq!(memo.get(h, &[1, 2]), Some(&10));
        assert_eq!(memo.get(h, &[3, 4]), Some(&20));
        assert_eq!(memo.get(h, &[5, 6]), None);
        *memo.get_mut(h, &[1, 2]).unwrap() = 11;
        assert_eq!(memo.get(h, &[1, 2]), Some(&11));
        memo.clear();
        assert_eq!(memo.get(h, &[1, 2]), None);
    }

    #[test]
    fn key_memo_set_semantics() {
        let mut memo: KeyMemo<()> = KeyMemo::default();
        let key = [7u64, 9];
        let h = hash_vals(&key);
        assert!(memo.insert_if_absent(h, &key));
        assert!(!memo.insert_if_absent(h, &key));
        assert!(memo.insert_if_absent(hash_vals(&[7, 10]), &[7, 10]));
    }
}
