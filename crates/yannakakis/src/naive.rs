//! Reference (from-scratch) evaluation of a CQAP.

use cqap_common::{CqapError, Result};
use cqap_query::{AccessRequest, Cqap};
use cqap_relation::{Database, Relation, Schema};

/// Materializes an atom of the query as a relation over the atom's
/// variables, renaming the stored relation's columns accordingly.
pub fn atom_relation(db: &Database, atom: &cqap_query::Atom) -> Result<Relation> {
    let stored = db.relation_or_err(&atom.relation)?;
    if stored.schema().arity() != atom.arity() {
        return Err(CqapError::SchemaMismatch {
            expected: format!("arity {}", atom.arity()),
            found: format!("arity {}", stored.schema().arity()),
        });
    }
    let schema = Schema::new(atom.vars.clone())?;
    Relation::from_tuples(
        format!("{}", atom),
        schema,
        stored.iter().cloned(),
    )
}

/// The full join of the query body `⋈_F R_F` over the database, with each
/// atom's columns renamed to its query variables.
pub fn full_join(cqap: &Cqap, db: &Database) -> Result<Relation> {
    let mut acc: Option<Relation> = None;
    for atom in cqap.cq().atoms() {
        let rel = atom_relation(db, atom)?;
        acc = Some(match acc {
            None => rel,
            Some(prev) => prev.join(&rel)?,
        });
    }
    acc.ok_or_else(|| CqapError::InvalidQuery("query has no atoms".into()))
}

/// Answers an access request from scratch: joins every atom with the access
/// request and projects onto the (normalized) head. This is the reference
/// implementation (and the `S = O(1)` extreme of the tradeoff space).
pub fn naive_answer(cqap: &Cqap, db: &Database, request: &AccessRequest) -> Result<Relation> {
    if request.access() != cqap.access() {
        return Err(CqapError::AccessPatternMismatch {
            expected_arity: cqap.access().len(),
            found_arity: request.access().len(),
        });
    }
    let mut acc = if request.access().is_empty() {
        None
    } else {
        Some(request.as_relation())
    };
    for atom in cqap.cq().atoms() {
        let rel = atom_relation(db, atom)?;
        acc = Some(match acc {
            None => rel,
            Some(prev) => prev.join(&rel)?,
        });
    }
    let joined = acc.expect("query has at least one atom");
    joined.project_onto(cqap.head())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_common::{Tuple, VarSet};
    use cqap_query::families;
    use cqap_query::workload::Graph;

    fn path_db_and_query(k: usize) -> (Cqap, Database) {
        let q = families::k_path_distinct(k);
        let g = Graph::random(30, 120, 42);
        (q, g.as_path_database(k))
    }

    #[test]
    fn two_path_answers() {
        let q = families::k_path_distinct(2);
        let mut db = Database::new();
        db.add_relation(Relation::binary("R1", 0, 1, [(1, 2), (1, 3), (4, 5)]))
            .unwrap();
        db.add_relation(Relation::binary("R2", 1, 2, [(2, 7), (3, 7), (5, 9)]))
            .unwrap();
        // (1, 7) is reachable via 2 and 3; (4, 9) via 5; (1, 9) is not.
        let yes = AccessRequest::single(q.access(), &[1, 7]).unwrap();
        let ans = naive_answer(&q, &db, &yes).unwrap();
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&Tuple::pair(1, 7)));

        let no = AccessRequest::single(q.access(), &[1, 9]).unwrap();
        assert!(naive_answer(&q, &db, &no).unwrap().is_empty());
    }

    #[test]
    fn batched_requests() {
        let (q, db) = path_db_and_query(3);
        let req = AccessRequest::new(
            q.access(),
            vec![Tuple::pair(0, 1), Tuple::pair(2, 3), Tuple::pair(5, 5)],
        )
        .unwrap();
        let ans = naive_answer(&q, &db, &req).unwrap();
        // Every answer must be one of the requested pairs.
        for t in ans.iter() {
            assert!(req.tuples().contains(t));
        }
    }

    #[test]
    fn full_join_matches_manual_composition() {
        let (q, db) = path_db_and_query(2);
        let j = full_join(&q, &db).unwrap();
        let r1 = atom_relation(db_ref(&db), &q.cq().atoms()[0]).unwrap();
        let r2 = atom_relation(db_ref(&db), &q.cq().atoms()[1]).unwrap();
        assert_eq!(j, r1.join(&r2).unwrap());
    }

    fn db_ref(db: &Database) -> &Database {
        db
    }

    #[test]
    fn empty_access_pattern_triangle() {
        // The triangle CQAP has an empty access pattern: the "request" is
        // empty and the answer is all (x1, x3) pairs on a triangle.
        let q = families::triangle_edge();
        let mut db = Database::new();
        db.add_relation(Relation::binary(
            "R",
            0,
            1,
            [(1, 2), (2, 3), (3, 1), (3, 4)],
        ))
        .unwrap();
        let req = AccessRequest::new(VarSet::EMPTY, vec![Tuple::empty()]).unwrap();
        let ans = naive_answer(&q, &db, &req).unwrap();
        assert_eq!(ans.len(), 3);
        assert!(ans.contains(&Tuple::pair(1, 3)));
        assert!(ans.contains(&Tuple::pair(2, 1)));
        assert!(ans.contains(&Tuple::pair(3, 2)));
    }

    #[test]
    fn mismatched_access_pattern_rejected() {
        let (q, db) = path_db_and_query(3);
        let bad = AccessRequest::single(VarSet::from_iter([0, 1]), &[1, 2]).unwrap();
        assert!(naive_answer(&q, &db, &bad).is_err());
    }

    #[test]
    fn arity_mismatch_in_atom_rejected() {
        let q = families::k_path_distinct(2);
        let mut db = Database::new();
        // R1 stored with arity 3 although the atom expects 2.
        let mut r1 = Relation::new("R1", cqap_relation::Schema::of([0, 1, 2]));
        r1.insert(Tuple::triple(1, 2, 3)).unwrap();
        db.add_relation(r1).unwrap();
        db.add_relation(Relation::binary("R2", 1, 2, [(2, 3)])).unwrap();
        let req = AccessRequest::single(q.access(), &[1, 3]).unwrap();
        assert!(naive_answer(&q, &db, &req).is_err());
    }
}
