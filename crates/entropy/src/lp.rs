//! Exact-rational linear programming.
//!
//! A small dense simplex solver sufficient for the Shannon-flow LPs of this
//! workspace (tens of variables, a few hundred constraints). It maximizes a
//! linear objective over non-negative variables subject to `≤`, `≥` and `=`
//! constraints, using the two-phase method with Bland's pivoting rule (which
//! guarantees termination). All arithmetic is exact ([`Rat`]), so optima are
//! exact rationals — the tradeoff exponents the reproduction reports are
//! never subject to floating-point noise.

use cqap_common::Rat;

/// Constraint sense.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// `Σ aᵢ xᵢ ≤ b`
    Le,
    /// `Σ aᵢ xᵢ ≥ b`
    Ge,
    /// `Σ aᵢ xᵢ = b`
    Eq,
}

/// A linear constraint in sparse form.
#[derive(Clone, Debug)]
struct Constraint {
    terms: Vec<(usize, Rat)>,
    relation: Relation,
    rhs: Rat,
}

/// Outcome of solving an [`Lp`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal {
        /// The optimal objective value.
        value: Rat,
        /// The values of the decision variables.
        solution: Vec<Rat>,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded above over the feasible region.
    Unbounded,
}

impl LpOutcome {
    /// The optimal value, if the LP was solved to optimality.
    pub fn value(&self) -> Option<Rat> {
        match self {
            LpOutcome::Optimal { value, .. } => Some(*value),
            _ => None,
        }
    }
}

/// A linear program `maximize c·x subject to constraints, x ≥ 0`.
#[derive(Clone, Debug)]
pub struct Lp {
    num_vars: usize,
    objective: Vec<Rat>,
    constraints: Vec<Constraint>,
}

impl Lp {
    /// Creates an LP with `num_vars` non-negative variables and a zero
    /// objective.
    pub fn new(num_vars: usize) -> Self {
        Lp {
            num_vars,
            objective: vec![Rat::ZERO; num_vars],
            constraints: Vec::new(),
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Sets the objective coefficient of variable `var` (maximization).
    pub fn set_objective(&mut self, var: usize, coeff: Rat) {
        assert!(var < self.num_vars);
        self.objective[var] = coeff;
    }

    /// Adds a constraint `Σ terms ⋈ rhs`. Repeated variable indices are
    /// summed.
    pub fn add_constraint(&mut self, terms: Vec<(usize, Rat)>, relation: Relation, rhs: Rat) {
        for &(v, _) in &terms {
            assert!(v < self.num_vars, "constraint references unknown variable");
        }
        self.constraints.push(Constraint {
            terms,
            relation,
            rhs,
        });
    }

    /// Solves the LP.
    pub fn solve(&self) -> LpOutcome {
        Tableau::solve(self)
    }
}

/// Dense simplex tableau over rationals.
struct Tableau {
    /// rows × cols matrix; the last column is the RHS.
    rows: Vec<Vec<Rat>>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Total number of columns excluding the RHS.
    num_cols: usize,
}

impl Tableau {
    fn solve(lp: &Lp) -> LpOutcome {
        let n = lp.num_vars;
        let m = lp.constraints.len();

        // Column layout: [structural 0..n) [slack/surplus n..n+m) [artificial ...]
        // (slack columns are allocated for every row; Eq rows simply leave
        //  theirs fixed at zero by never entering them into the basis —
        //  enforced by giving them a zero coefficient).
        let slack_base = n;
        let art_base = n + m;

        // Determine which rows need artificial variables.
        let mut num_art = 0usize;
        let mut art_of_row: Vec<Option<usize>> = vec![None; m];
        let mut normalized: Vec<(Vec<Rat>, Rat, Relation)> = Vec::with_capacity(m);
        for (i, c) in lp.constraints.iter().enumerate() {
            let mut coeffs = vec![Rat::ZERO; n];
            for &(v, a) in &c.terms {
                coeffs[v] += a;
            }
            let mut rhs = c.rhs;
            let mut rel = c.relation;
            // Make the RHS non-negative by multiplying through by -1.
            if rhs.is_negative() {
                for a in &mut coeffs {
                    *a = -*a;
                }
                rhs = -rhs;
                rel = match rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
            }
            let needs_art = match rel {
                Relation::Le => false,
                Relation::Ge | Relation::Eq => true,
            };
            if needs_art {
                art_of_row[i] = Some(num_art);
                num_art += 1;
            }
            normalized.push((coeffs, rhs, rel));
        }

        let num_cols = n + m + num_art;
        let mut rows = Vec::with_capacity(m);
        let mut basis = Vec::with_capacity(m);
        for (i, (coeffs, rhs, rel)) in normalized.iter().enumerate() {
            let mut row = vec![Rat::ZERO; num_cols + 1];
            row[..n].clone_from_slice(coeffs);
            match rel {
                Relation::Le => {
                    row[slack_base + i] = Rat::ONE;
                    basis.push(slack_base + i);
                }
                Relation::Ge => {
                    row[slack_base + i] = -Rat::ONE; // surplus
                    let a = art_base + art_of_row[i].expect("artificial allocated");
                    row[a] = Rat::ONE;
                    basis.push(a);
                }
                Relation::Eq => {
                    let a = art_base + art_of_row[i].expect("artificial allocated");
                    row[a] = Rat::ONE;
                    basis.push(a);
                }
            }
            row[num_cols] = *rhs;
            rows.push(row);
        }

        let mut tab = Tableau {
            rows,
            basis,
            num_cols,
        };

        // Phase 1: minimize the sum of artificial variables, i.e. maximize
        // the negated sum.
        if num_art > 0 {
            let mut phase1_obj = vec![Rat::ZERO; num_cols];
            for a in 0..num_art {
                phase1_obj[art_base + a] = -Rat::ONE;
            }
            let (status, value) = tab.optimize(&phase1_obj);
            debug_assert!(status, "phase 1 cannot be unbounded");
            if value.is_negative() {
                return LpOutcome::Infeasible;
            }
            // Drive any artificial variables remaining in the basis out of
            // it (they must have value zero at this point).
            for r in 0..tab.rows.len() {
                if tab.basis[r] >= art_base {
                    // Find a non-artificial column with a nonzero entry.
                    if let Some(c) = (0..art_base).find(|&c| !tab.rows[r][c].is_zero()) {
                        tab.pivot(r, c);
                    }
                    // If none exists, the row is all zero over the original
                    // columns (a redundant constraint) and can stay as is.
                }
            }
        }

        // Phase 2: maximize the real objective (artificial columns are
        // excluded from entering by giving them strongly negative reduced
        // costs via a zero objective and never selecting them).
        let mut phase2_obj = vec![Rat::ZERO; num_cols];
        phase2_obj[..n].clone_from_slice(&lp.objective);
        let (bounded, value) = tab.optimize_restricted(&phase2_obj, art_base);
        if !bounded {
            return LpOutcome::Unbounded;
        }

        let mut solution = vec![Rat::ZERO; n];
        for (r, &b) in tab.basis.iter().enumerate() {
            if b < n {
                solution[b] = tab.rows[r][num_cols];
            }
        }
        LpOutcome::Optimal { value, solution }
    }

    /// Runs the simplex on the current basis with the given objective.
    /// Returns `(bounded, value)`.
    fn optimize(&mut self, objective: &[Rat]) -> (bool, Rat) {
        self.optimize_restricted(objective, self.num_cols)
    }

    /// Like [`Tableau::optimize`] but never lets a column `≥ forbidden_from`
    /// enter the basis (used in phase 2 to keep artificial variables out).
    ///
    /// Pivoting uses Dantzig's rule (largest reduced cost) for speed and
    /// falls back to Bland's rule — which cannot cycle — once the iteration
    /// count exceeds a safety threshold.
    fn optimize_restricted(&mut self, objective: &[Rat], forbidden_from: usize) -> (bool, Rat) {
        let bland_after = 4 * (self.rows.len() + self.num_cols) + 1000;
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            let reduced = self.reduced_costs(objective);
            let candidates =
                (0..forbidden_from.min(self.num_cols)).filter(|&c| reduced[c].is_positive() && !self.in_basis(c));
            let entering = if iterations > bland_after {
                // Bland's rule: smallest index.
                candidates.min()
            } else {
                // Dantzig's rule: most positive reduced cost.
                candidates.max_by(|&a, &b| reduced[a].cmp(&reduced[b]))
            };
            let Some(entering) = entering else {
                return (true, self.objective_value(objective));
            };
            // Ratio test; Bland's rule tie-break by smallest basis variable.
            let mut leaving: Option<(usize, Rat)> = None;
            for r in 0..self.rows.len() {
                let a = self.rows[r][entering];
                if a.is_positive() {
                    let ratio = self.rows[r][self.num_cols] / a;
                    match &leaving {
                        None => leaving = Some((r, ratio)),
                        Some((lr, lratio)) => {
                            if ratio < *lratio
                                || (ratio == *lratio && self.basis[r] < self.basis[*lr])
                            {
                                leaving = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            let Some((leave_row, _)) = leaving else {
                return (false, Rat::ZERO); // unbounded
            };
            self.pivot(leave_row, entering);
        }
    }

    fn in_basis(&self, col: usize) -> bool {
        self.basis.contains(&col)
    }

    /// Reduced cost of each column: `c_j - c_B · B⁻¹ A_j`, computed directly
    /// from the tableau (rows are already `B⁻¹ A`).
    fn reduced_costs(&self, objective: &[Rat]) -> Vec<Rat> {
        let mut reduced = objective.to_vec();
        for (r, &b) in self.basis.iter().enumerate() {
            let cb = objective[b];
            if cb.is_zero() {
                continue;
            }
            for c in 0..self.num_cols {
                let a = self.rows[r][c];
                if !a.is_zero() {
                    reduced[c] -= cb * a;
                }
            }
        }
        reduced
    }

    fn objective_value(&self, objective: &[Rat]) -> Rat {
        let mut v = Rat::ZERO;
        for (r, &b) in self.basis.iter().enumerate() {
            v += objective[b] * self.rows[r][self.num_cols];
        }
        v
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let pivot = self.rows[row][col];
        debug_assert!(!pivot.is_zero());
        let inv = pivot.recip();
        for c in 0..=self.num_cols {
            self.rows[row][c] *= inv;
        }
        for r in 0..self.rows.len() {
            if r == row {
                continue;
            }
            let factor = self.rows[r][col];
            if factor.is_zero() {
                continue;
            }
            for c in 0..=self.num_cols {
                let delta = factor * self.rows[row][c];
                self.rows[r][c] -= delta;
            }
        }
        self.basis[row] = col;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_common::rat::rat;

    #[test]
    fn simple_maximization() {
        // max 3x + 2y s.t. x + y ≤ 4, x ≤ 2  → x = 2, y = 2, value 10.
        let mut lp = Lp::new(2);
        lp.set_objective(0, Rat::int(3));
        lp.set_objective(1, Rat::int(2));
        lp.add_constraint(vec![(0, Rat::ONE), (1, Rat::ONE)], Relation::Le, Rat::int(4));
        lp.add_constraint(vec![(0, Rat::ONE)], Relation::Le, Rat::int(2));
        match lp.solve() {
            LpOutcome::Optimal { value, solution } => {
                assert_eq!(value, Rat::int(10));
                assert_eq!(solution, vec![Rat::int(2), Rat::int(2)]);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn fractional_optimum() {
        // max x + y s.t. 2x + y ≤ 3, x + 2y ≤ 3 → x = y = 1, value 2;
        // with objective x + 2y → x = 0? no: optimum at (1,1): 3 vs (0, 3/2): 3.
        // Use max 2x + 3y s.t. same: corners (3/2,0)=3, (1,1)=5, (0,3/2)=9/2 → 5.
        let mut lp = Lp::new(2);
        lp.set_objective(0, Rat::int(2));
        lp.set_objective(1, Rat::int(3));
        lp.add_constraint(
            vec![(0, Rat::int(2)), (1, Rat::ONE)],
            Relation::Le,
            Rat::int(3),
        );
        lp.add_constraint(
            vec![(0, Rat::ONE), (1, Rat::int(2))],
            Relation::Le,
            Rat::int(3),
        );
        assert_eq!(lp.solve().value(), Some(Rat::int(5)));
    }

    #[test]
    fn ge_constraints_and_phase1() {
        // max x s.t. x ≥ 2, x ≤ 5 → 5.
        let mut lp = Lp::new(1);
        lp.set_objective(0, Rat::ONE);
        lp.add_constraint(vec![(0, Rat::ONE)], Relation::Ge, Rat::int(2));
        lp.add_constraint(vec![(0, Rat::ONE)], Relation::Le, Rat::int(5));
        assert_eq!(lp.solve().value(), Some(Rat::int(5)));

        // min-like: max -x s.t. x ≥ 2 → -2.
        let mut lp = Lp::new(1);
        lp.set_objective(0, -Rat::ONE);
        lp.add_constraint(vec![(0, Rat::ONE)], Relation::Ge, Rat::int(2));
        assert_eq!(lp.solve().value(), Some(Rat::int(-2)));
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 3, x ≤ 1 → 3 with x ≤ 1.
        let mut lp = Lp::new(2);
        lp.set_objective(0, Rat::ONE);
        lp.set_objective(1, Rat::ONE);
        lp.add_constraint(vec![(0, Rat::ONE), (1, Rat::ONE)], Relation::Eq, Rat::int(3));
        lp.add_constraint(vec![(0, Rat::ONE)], Relation::Le, Rat::ONE);
        assert_eq!(lp.solve().value(), Some(Rat::int(3)));
    }

    #[test]
    fn infeasible() {
        let mut lp = Lp::new(1);
        lp.set_objective(0, Rat::ONE);
        lp.add_constraint(vec![(0, Rat::ONE)], Relation::Ge, Rat::int(5));
        lp.add_constraint(vec![(0, Rat::ONE)], Relation::Le, Rat::int(1));
        assert_eq!(lp.solve(), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded() {
        let mut lp = Lp::new(2);
        lp.set_objective(0, Rat::ONE);
        lp.add_constraint(vec![(1, Rat::ONE)], Relation::Le, Rat::int(1));
        assert_eq!(lp.solve(), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_normalization() {
        // x - y ≤ -1 means y ≥ x + 1; max x s.t. that and y ≤ 3 → x = 2.
        let mut lp = Lp::new(2);
        lp.set_objective(0, Rat::ONE);
        lp.add_constraint(
            vec![(0, Rat::ONE), (1, -Rat::ONE)],
            Relation::Le,
            Rat::int(-1),
        );
        lp.add_constraint(vec![(1, Rat::ONE)], Relation::Le, Rat::int(3));
        assert_eq!(lp.solve().value(), Some(Rat::int(2)));
    }

    #[test]
    fn repeated_terms_are_summed() {
        // (x + x) ≤ 3 → x ≤ 3/2.
        let mut lp = Lp::new(1);
        lp.set_objective(0, Rat::ONE);
        lp.add_constraint(vec![(0, Rat::ONE), (0, Rat::ONE)], Relation::Le, Rat::int(3));
        assert_eq!(lp.solve().value(), Some(rat(3, 2)));
    }

    #[test]
    fn degenerate_lp_terminates() {
        // A classic degenerate instance; Bland's rule must not cycle.
        let mut lp = Lp::new(4);
        lp.set_objective(0, rat(3, 4));
        lp.set_objective(1, Rat::int(-150));
        lp.set_objective(2, rat(1, 50));
        lp.set_objective(3, Rat::int(-6));
        lp.add_constraint(
            vec![
                (0, rat(1, 4)),
                (1, Rat::int(-60)),
                (2, rat(-1, 25)),
                (3, Rat::int(9)),
            ],
            Relation::Le,
            Rat::ZERO,
        );
        lp.add_constraint(
            vec![
                (0, rat(1, 2)),
                (1, Rat::int(-90)),
                (2, rat(-1, 50)),
                (3, Rat::int(3)),
            ],
            Relation::Le,
            Rat::ZERO,
        );
        lp.add_constraint(vec![(2, Rat::ONE)], Relation::Le, Rat::ONE);
        let out = lp.solve();
        assert_eq!(out.value(), Some(rat(1, 20)));
    }

    #[test]
    fn zero_variable_lp() {
        let lp = Lp::new(3);
        // No constraints, zero objective: optimum 0 at the origin.
        assert_eq!(lp.solve().value(), Some(Rat::ZERO));
    }
}
