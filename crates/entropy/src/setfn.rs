//! Concrete set functions over variable subsets.
//!
//! A [`SetFunction`] assigns a rational value to every subset of `[n]`. It
//! is used to *check* polymatroid properties concretely (property tests of
//! the flow machinery) and to evaluate linear combinations of conditional
//! terms.

use cqap_common::{Rat, VarSet};

/// A set function `h : 2^[n] → Q` with `h(∅) = 0`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SetFunction {
    n: usize,
    values: Vec<Rat>,
}

impl SetFunction {
    /// The zero function on `[n]`.
    pub fn zero(n: usize) -> Self {
        assert!(n <= 20, "set functions are dense in 2^n");
        SetFunction {
            n,
            values: vec![Rat::ZERO; 1 << n],
        }
    }

    /// Builds a set function by evaluating `f` on every subset (the value on
    /// the empty set is forced to zero).
    pub fn from_fn(n: usize, mut f: impl FnMut(VarSet) -> Rat) -> Self {
        assert!(n <= 20);
        let mut values = vec![Rat::ZERO; 1 << n];
        for (mask, slot) in values.iter_mut().enumerate().skip(1) {
            *slot = f(VarSet(mask as u64));
        }
        SetFunction { n, values }
    }

    /// The cardinality function `h(X) = |X|` — the canonical modular
    /// polymatroid.
    pub fn cardinality(n: usize) -> Self {
        SetFunction::from_fn(n, |s| Rat::int(s.len() as i128))
    }

    /// The rank-style function `h(X) = min(|X|, cap)` — a classic
    /// non-modular polymatroid.
    pub fn truncated_cardinality(n: usize, cap: usize) -> Self {
        SetFunction::from_fn(n, |s| Rat::int(s.len().min(cap) as i128))
    }

    /// Ground-set size `n`.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// `h(X)`.
    pub fn eval(&self, set: VarSet) -> Rat {
        let mask = set.0 as usize;
        assert!(mask < self.values.len(), "set outside the ground set");
        self.values[mask]
    }

    /// Sets `h(X) = value`.
    ///
    /// # Panics
    /// Panics when `X = ∅` and `value ≠ 0` (the empty set is pinned to 0).
    pub fn set(&mut self, set: VarSet, value: Rat) {
        if set.is_empty() {
            assert!(value.is_zero(), "h(∅) must stay 0");
            return;
        }
        let mask = set.0 as usize;
        assert!(mask < self.values.len());
        self.values[mask] = value;
    }

    /// Conditional value `h(Y | X) = h(Y ∪ X) − h(X)`.
    pub fn conditional(&self, of: VarSet, on: VarSet) -> Rat {
        self.eval(of.union(on)) - self.eval(on)
    }

    /// Whether the function is non-negative.
    pub fn is_nonnegative(&self) -> bool {
        self.values.iter().all(|v| !v.is_negative())
    }

    /// Whether the function is monotone (`X ⊆ Y ⇒ h(X) ≤ h(Y)`), checked
    /// via the elemental form `h(X) ≤ h(X ∪ {i})`.
    pub fn is_monotone(&self) -> bool {
        let full = VarSet::prefix(self.n);
        full.subsets().all(|x| {
            full.difference(x)
                .iter()
                .all(|i| self.eval(x) <= self.eval(x.insert(i)))
        })
    }

    /// Whether the function is submodular, checked via the elemental form
    /// `h(X∪{i}) + h(X∪{j}) ≥ h(X∪{i,j}) + h(X)`.
    pub fn is_submodular(&self) -> bool {
        let full = VarSet::prefix(self.n);
        for x in full.subsets() {
            let rest = full.difference(x).to_vec();
            for (a, &i) in rest.iter().enumerate() {
                for &j in &rest[a + 1..] {
                    let lhs = self.eval(x.insert(i)) + self.eval(x.insert(j));
                    let rhs = self.eval(x.insert(i).insert(j)) + self.eval(x);
                    if lhs < rhs {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Whether the function is a polymatroid: `h(∅) = 0`, non-negative,
    /// monotone and submodular.
    pub fn is_polymatroid(&self) -> bool {
        self.values[0].is_zero()
            && self.is_nonnegative()
            && self.is_monotone()
            && self.is_submodular()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_common::rat::rat;
    use cqap_common::vars;
    use proptest::prelude::*;

    #[test]
    fn cardinality_is_polymatroid() {
        let h = SetFunction::cardinality(4);
        assert!(h.is_polymatroid());
        assert_eq!(h.eval(vars![1, 3]), Rat::int(2));
        assert_eq!(h.conditional(vars![2], vars![1, 3]), Rat::ONE);
        assert_eq!(h.conditional(vars![1], vars![1, 3]), Rat::ZERO);
    }

    #[test]
    fn truncated_cardinality_is_polymatroid() {
        for cap in 0..=4 {
            assert!(SetFunction::truncated_cardinality(4, cap).is_polymatroid());
        }
    }

    #[test]
    fn non_monotone_detected() {
        let mut h = SetFunction::cardinality(3);
        h.set(vars![1, 2, 3], Rat::ONE); // below h({1,2}) = 2
        assert!(!h.is_monotone());
        assert!(!h.is_polymatroid());
    }

    #[test]
    fn non_submodular_detected() {
        // h(X) = |X|^2 is supermodular, not submodular.
        let h = SetFunction::from_fn(3, |s| Rat::int((s.len() * s.len()) as i128));
        assert!(h.is_monotone());
        assert!(!h.is_submodular());
    }

    #[test]
    fn set_and_eval_round_trip() {
        let mut h = SetFunction::zero(3);
        h.set(vars![1, 2], rat(3, 2));
        assert_eq!(h.eval(vars![1, 2]), rat(3, 2));
        assert_eq!(h.eval(vars![1]), Rat::ZERO);
        assert_eq!(h.eval(VarSet::EMPTY), Rat::ZERO);
    }

    proptest! {
        /// Random "entropy-like" functions built as minima of weighted
        /// cardinalities are polymatroids.
        #[test]
        fn min_of_modular_functions_is_polymatroid(
            w1 in 0i128..5, w2 in 0i128..5, cap in 0i128..8
        ) {
            let h = SetFunction::from_fn(4, |s| {
                let card = Rat::int(s.len() as i128);
                let weighted = Rat::int(w1) * card + Rat::int(w2);
                weighted.min(Rat::int(cap)).max(Rat::ZERO).min(Rat::int(w1) * card)
            });
            // min(a·|X|, cap-ish) stays submodular & monotone when a ≥ 0.
            prop_assert!(h.is_monotone());
            prop_assert!(h.is_submodular());
        }

        /// Conditional values of a polymatroid are non-negative.
        #[test]
        fn conditionals_nonnegative(cap in 0usize..5) {
            let h = SetFunction::truncated_cardinality(4, cap);
            let full = VarSet::prefix(4);
            for y in full.subsets() {
                for x in y.subsets() {
                    prop_assert!(!h.conditional(y, x).is_negative());
                }
            }
        }
    }
}
