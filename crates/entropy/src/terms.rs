//! Conditional polymatroid terms and linear combinations of them.

use crate::setfn::SetFunction;
use cqap_common::{Rat, VarSet};
use std::fmt;

/// A conditional term `h(of | on)`, i.e. `h(of ∪ on) − h(on)`. Unconditional
/// terms use `on = ∅`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CondTerm {
    /// The conditioned set `Y`.
    pub of: VarSet,
    /// The conditioning set `X`.
    pub on: VarSet,
}

impl CondTerm {
    /// `h(of)` (unconditional).
    pub fn plain(of: VarSet) -> Self {
        CondTerm {
            of,
            on: VarSet::EMPTY,
        }
    }

    /// `h(of | on)`.
    pub fn given(of: VarSet, on: VarSet) -> Self {
        CondTerm { of, on }
    }

    /// Evaluates the term against a concrete set function.
    pub fn eval(&self, h: &SetFunction) -> Rat {
        h.conditional(self.of, self.on)
    }
}

impl fmt::Debug for CondTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for CondTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.on.is_empty() {
            write!(f, "h({})", fmt_vars(self.of))
        } else {
            write!(f, "h({}|{})", fmt_vars(self.of), fmt_vars(self.on))
        }
    }
}

fn fmt_vars(s: VarSet) -> String {
    if s.is_empty() {
        return "∅".to_string();
    }
    s.iter().map(|v| (v + 1).to_string()).collect::<String>()
}

/// Which polymatroid of a joint inequality a term refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// The preprocessing polymatroid `h_S`.
    Pre,
    /// The online polymatroid `h_T`.
    Online,
}

/// A linear combination of conditional terms over a single polymatroid.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinComb {
    terms: Vec<(Rat, CondTerm)>,
}

impl LinComb {
    /// The empty combination.
    pub fn new() -> Self {
        LinComb::default()
    }

    /// Adds `coeff · term` (merging with an existing identical term).
    pub fn add(&mut self, coeff: Rat, term: CondTerm) -> &mut Self {
        if coeff.is_zero() {
            return self;
        }
        if let Some(slot) = self.terms.iter_mut().find(|(_, t)| *t == term) {
            slot.0 += coeff;
            if slot.0.is_zero() {
                self.terms.retain(|(c, _)| !c.is_zero());
            }
        } else {
            self.terms.push((coeff, term));
        }
        self
    }

    /// Builder-style [`LinComb::add`].
    #[must_use]
    pub fn with(mut self, coeff: Rat, term: CondTerm) -> Self {
        self.add(coeff, term);
        self
    }

    /// The terms.
    pub fn terms(&self) -> &[(Rat, CondTerm)] {
        &self.terms
    }

    /// Whether the combination has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates against a concrete set function.
    pub fn eval(&self, h: &SetFunction) -> Rat {
        self.terms
            .iter()
            .fold(Rat::ZERO, |acc, (c, t)| acc + *c * t.eval(h))
    }

    /// Sum of coefficients (the `‖·‖₁` of the paper when all coefficients
    /// are non-negative).
    pub fn coeff_sum(&self) -> Rat {
        self.terms.iter().fold(Rat::ZERO, |acc, (c, _)| acc + *c)
    }
}

impl fmt::Display for LinComb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, (c, t)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if *c == Rat::ONE {
                write!(f, "{t}")?;
            } else {
                write!(f, "{c}·{t}")?;
            }
        }
        Ok(())
    }
}

/// A linear combination of conditional terms over the *pair* of polymatroids
/// `(h_S, h_T)` of a joint Shannon-flow inequality.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JointLinComb {
    terms: Vec<(Rat, Phase, CondTerm)>,
}

impl JointLinComb {
    /// The empty combination.
    pub fn new() -> Self {
        JointLinComb::default()
    }

    /// Adds `coeff · h_phase(term)`.
    pub fn add(&mut self, coeff: Rat, phase: Phase, term: CondTerm) -> &mut Self {
        if coeff.is_zero() {
            return self;
        }
        if let Some(slot) = self
            .terms
            .iter_mut()
            .find(|(_, p, t)| *p == phase && *t == term)
        {
            slot.0 += coeff;
            if slot.0.is_zero() {
                self.terms.retain(|(c, _, _)| !c.is_zero());
            }
        } else {
            self.terms.push((coeff, phase, term));
        }
        self
    }

    /// Builder-style [`JointLinComb::add`].
    #[must_use]
    pub fn with(mut self, coeff: Rat, phase: Phase, term: CondTerm) -> Self {
        self.add(coeff, phase, term);
        self
    }

    /// Shorthand for an `h_S` term.
    #[must_use]
    pub fn with_pre(self, coeff: Rat, term: CondTerm) -> Self {
        self.with(coeff, Phase::Pre, term)
    }

    /// Shorthand for an `h_T` term.
    #[must_use]
    pub fn with_online(self, coeff: Rat, term: CondTerm) -> Self {
        self.with(coeff, Phase::Online, term)
    }

    /// The terms.
    pub fn terms(&self) -> &[(Rat, Phase, CondTerm)] {
        &self.terms
    }

    /// Evaluates against concrete set functions for the two phases.
    pub fn eval(&self, h_pre: &SetFunction, h_online: &SetFunction) -> Rat {
        self.terms.iter().fold(Rat::ZERO, |acc, (c, p, t)| {
            let v = match p {
                Phase::Pre => t.eval(h_pre),
                Phase::Online => t.eval(h_online),
            };
            acc + *c * v
        })
    }
}

impl fmt::Display for JointLinComb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, (c, p, t)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            let tag = match p {
                Phase::Pre => "S",
                Phase::Online => "T",
            };
            if *c == Rat::ONE {
                write!(f, "{tag}:{t}")?;
            } else {
                write!(f, "{c}·{tag}:{t}")?;
            }
        }
        Ok(())
    }
}

/// Convenience: `term(&[1,3], &[])` builds `h({x1,x3})` using 1-based
/// variable numbers as written in the paper.
pub fn term(of: &[usize], on: &[usize]) -> CondTerm {
    CondTerm::given(
        VarSet::from_iter(of.iter().map(|&v| v - 1)),
        VarSet::from_iter(on.iter().map(|&v| v - 1)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_common::rat::rat;
    use cqap_common::vars;

    #[test]
    fn term_construction_and_eval() {
        let h = SetFunction::cardinality(4);
        let t = term(&[2], &[1, 3]);
        assert_eq!(t.of, vars![2]);
        assert_eq!(t.on, vars![1, 3]);
        assert_eq!(t.eval(&h), Rat::ONE);
        assert_eq!(term(&[1, 3], &[]).eval(&h), Rat::int(2));
        assert_eq!(format!("{}", term(&[1, 3], &[])), "h(13)");
        assert_eq!(format!("{}", term(&[2], &[1])), "h(2|1)");
    }

    #[test]
    fn lincomb_merging_and_eval() {
        let h = SetFunction::cardinality(3);
        let mut c = LinComb::new();
        c.add(Rat::ONE, term(&[1], &[]));
        c.add(Rat::ONE, term(&[1], &[]));
        c.add(rat(1, 2), term(&[2, 3], &[]));
        assert_eq!(c.terms().len(), 2);
        // 2·h(1) + 1/2·h(23) = 2 + 1 = 3.
        assert_eq!(c.eval(&h), Rat::int(3));
        assert_eq!(c.coeff_sum(), rat(5, 2));
        // Cancelling a term removes it.
        c.add(-Rat::int(2), term(&[1], &[]));
        assert_eq!(c.terms().len(), 1);
    }

    #[test]
    fn joint_lincomb_eval_uses_correct_phase() {
        let pre = SetFunction::cardinality(3);
        let online = SetFunction::truncated_cardinality(3, 1);
        let c = JointLinComb::new()
            .with_pre(Rat::ONE, term(&[1, 2], &[]))
            .with_online(Rat::ONE, term(&[1, 2], &[]));
        // 2 (cardinality) + 1 (truncated) = 3.
        assert_eq!(c.eval(&pre, &online), Rat::int(3));
    }

    #[test]
    fn display() {
        let c = LinComb::new()
            .with(Rat::ONE, term(&[1], &[]))
            .with(Rat::int(2), term(&[2], &[1]));
        assert_eq!(format!("{c}"), "h(1) + 2·h(2|1)");
        let j = JointLinComb::new()
            .with_pre(Rat::ONE, term(&[1], &[]))
            .with_online(Rat::int(2), term(&[1, 3], &[]));
        assert_eq!(format!("{j}"), "S:h(1) + 2·T:h(13)");
        assert_eq!(format!("{}", LinComb::new()), "0");
    }
}
