//! Joint Shannon-flow inequalities (Definition D.4).
//!
//! A joint Shannon-flow inequality is an inequality over a *pair* of
//! polymatroids `(h_S, h_T)` — `h_S` governs the preprocessing phase and
//! `h_T` the online phase. Every joint Shannon-flow inequality yields a
//! space-time tradeoff (Theorem 5.1 / D.6). [`JointFlow::is_valid`] decides
//! validity exactly with one LP over the product cone `Γ_n × Γ_n`.
//!
//! The unit tests of this module re-derive every joint inequality the paper
//! writes out explicitly (Section 5, Section 6.1, Appendix E.5–E.8), which
//! is the analytic half of the reproduction of Table 1 and Figures 4a/4b.

use crate::lp::{Lp, LpOutcome};
use crate::polycone::PolyVars;
use crate::terms::{JointLinComb, Phase};
use cqap_common::{FxHashMap, Rat};

/// A joint Shannon-flow inequality `⟨lhs, (h_S,h_T)⟩ ≥ ⟨rhs, (h_S,h_T)⟩`.
#[derive(Clone, Debug)]
pub struct JointFlow {
    /// Ground-set size `n`.
    pub num_vars: usize,
    /// The left-hand side.
    pub lhs: JointLinComb,
    /// The right-hand side.
    pub rhs: JointLinComb,
}

impl JointFlow {
    /// Creates a joint inequality.
    pub fn new(num_vars: usize, lhs: JointLinComb, rhs: JointLinComb) -> Self {
        JointFlow { num_vars, lhs, rhs }
    }

    /// Whether the inequality holds for every pair of polymatroids on `[n]`.
    pub fn is_valid(&self) -> bool {
        let n = self.num_vars;
        let block = PolyVars::block_len(n);
        let pre = PolyVars { n, base: 0 };
        let online = PolyVars { n, base: block };
        let mut lp = Lp::new(2 * block);
        pre.add_polymatroid_constraints(&mut lp);
        online.add_polymatroid_constraints(&mut lp);

        let mut coeff: FxHashMap<usize, Rat> = FxHashMap::default();
        let mut accumulate = |comb: &JointLinComb, sign: Rat| {
            for (c, p, t) in comb.terms() {
                let pv = match p {
                    Phase::Pre => &pre,
                    Phase::Online => &online,
                };
                if let Some(v) = pv.var(t.of.union(t.on)) {
                    *coeff.entry(v).or_default() += sign * *c;
                }
                if let Some(v) = pv.var(t.on) {
                    *coeff.entry(v).or_default() -= sign * *c;
                }
            }
        };
        accumulate(&self.rhs, Rat::ONE);
        accumulate(&self.lhs, -Rat::ONE);
        for (v, c) in coeff {
            lp.set_objective(v, c);
        }
        match lp.solve() {
            LpOutcome::Optimal { value, .. } => !value.is_positive(),
            LpOutcome::Unbounded => false,
            LpOutcome::Infeasible => unreachable!("the product cone contains 0"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terms::term;
    use cqap_common::Rat;

    fn j() -> JointLinComb {
        JointLinComb::new()
    }

    /// Section 5 running example (2-reachability):
    /// `h_S(1) + h_T(2|1) + h_S(3) + h_T(2|3) + 2 h_T(13)
    ///  ≥ h_S(13) + 2 h_T(123)`.
    #[test]
    fn section5_running_example() {
        let flow = JointFlow::new(
            3,
            j().with_pre(Rat::ONE, term(&[1], &[]))
                .with_online(Rat::ONE, term(&[2], &[1]))
                .with_pre(Rat::ONE, term(&[3], &[]))
                .with_online(Rat::ONE, term(&[2], &[3]))
                .with_online(Rat::int(2), term(&[1, 3], &[])),
            j().with_pre(Rat::ONE, term(&[1, 3], &[]))
                .with_online(Rat::int(2), term(&[1, 2, 3], &[])),
        );
        assert!(flow.is_valid());
    }

    /// Tightness companion to the running example: demanding `3 h_T(123)`
    /// on the right makes the inequality false.
    #[test]
    fn section5_running_example_is_tight() {
        let flow = JointFlow::new(
            3,
            j().with_pre(Rat::ONE, term(&[1], &[]))
                .with_online(Rat::ONE, term(&[2], &[1]))
                .with_pre(Rat::ONE, term(&[3], &[]))
                .with_online(Rat::ONE, term(&[2], &[3]))
                .with_online(Rat::int(2), term(&[1, 3], &[])),
            j().with_pre(Rat::ONE, term(&[1, 3], &[]))
                .with_online(Rat::int(3), term(&[1, 2, 3], &[])),
        );
        assert!(!flow.is_valid());
    }

    /// Example 5.2 / E.5 (square query, first rule):
    /// `h_S(1) + h_T(4|1) + h_S(3) + h_T(4|3) + 2 h_T(13)
    ///  ≥ h_S(13) + 2 h_T(134)`.
    #[test]
    fn square_query_first_rule() {
        let flow = JointFlow::new(
            4,
            j().with_pre(Rat::ONE, term(&[1], &[]))
                .with_online(Rat::ONE, term(&[4], &[1]))
                .with_pre(Rat::ONE, term(&[3], &[]))
                .with_online(Rat::ONE, term(&[4], &[3]))
                .with_online(Rat::int(2), term(&[1, 3], &[])),
            j().with_pre(Rat::ONE, term(&[1, 3], &[]))
                .with_online(Rat::int(2), term(&[1, 3, 4], &[])),
        );
        assert!(flow.is_valid());
    }

    /// Example E.7, rule ρ1 for 3-reachability:
    /// `h_S(1) + h_S(4) + h_T(2|1) + h_T(3|4) + 2 h_T(14)
    ///  ≥ h_S(14) + h_T(124) + h_T(134)`.
    #[test]
    fn three_reach_rho1() {
        let flow = JointFlow::new(
            4,
            j().with_pre(Rat::ONE, term(&[1], &[]))
                .with_pre(Rat::ONE, term(&[4], &[]))
                .with_online(Rat::ONE, term(&[2], &[1]))
                .with_online(Rat::ONE, term(&[3], &[4]))
                .with_online(Rat::int(2), term(&[1, 4], &[])),
            j().with_pre(Rat::ONE, term(&[1, 4], &[]))
                .with_online(Rat::ONE, term(&[1, 2, 4], &[]))
                .with_online(Rat::ONE, term(&[1, 3, 4], &[])),
        );
        assert!(flow.is_valid());
    }

    /// Example E.7, rule ρ2 for 3-reachability:
    /// `2(h_S(1)+h_T(2|1)) + h_S(3)+h_T(2|3) + h_S(4)+h_T(3|4) + 3 h_T(14)
    ///  ≥ h_S(14) + h_S(13) + 3 h_T(124)`.
    #[test]
    fn three_reach_rho2() {
        let flow = JointFlow::new(
            4,
            j().with_pre(Rat::int(2), term(&[1], &[]))
                .with_online(Rat::int(2), term(&[2], &[1]))
                .with_pre(Rat::ONE, term(&[3], &[]))
                .with_online(Rat::ONE, term(&[2], &[3]))
                .with_pre(Rat::ONE, term(&[4], &[]))
                .with_online(Rat::ONE, term(&[3], &[4]))
                .with_online(Rat::int(3), term(&[1, 4], &[])),
            j().with_pre(Rat::ONE, term(&[1, 4], &[]))
                .with_pre(Rat::ONE, term(&[1, 3], &[]))
                .with_online(Rat::int(3), term(&[1, 2, 4], &[])),
        );
        assert!(flow.is_valid());
    }

    /// Example E.7, rule ρ4, first (linear-regime) proof:
    /// `h_S(1) + h_S(4) + h_T(2|1) + h_T(3|4) + h_T(14)
    ///  ≥ h_S(14) + h_T(123)`.
    #[test]
    fn three_reach_rho4_first() {
        let flow = JointFlow::new(
            4,
            j().with_pre(Rat::ONE, term(&[1], &[]))
                .with_pre(Rat::ONE, term(&[4], &[]))
                .with_online(Rat::ONE, term(&[2], &[1]))
                .with_online(Rat::ONE, term(&[3], &[4]))
                .with_online(Rat::ONE, term(&[1, 4], &[])),
            j().with_pre(Rat::ONE, term(&[1, 4], &[]))
                .with_online(Rat::ONE, term(&[1, 2, 3], &[])),
        );
        assert!(flow.is_valid());
    }

    /// Example E.7, rule ρ4, second (high-space) proof:
    /// `2 h_S(23) + h_S(12) + h_S(34) + h_S(1) + h_T(2|1) + h_S(4) +
    ///  h_T(3|4) + h_T(14) ≥ 2 h_S(24) + 2 h_S(13) + h_T(123)`.
    #[test]
    fn three_reach_rho4_second() {
        let flow = JointFlow::new(
            4,
            j().with_pre(Rat::int(2), term(&[2, 3], &[]))
                .with_pre(Rat::ONE, term(&[1, 2], &[]))
                .with_pre(Rat::ONE, term(&[3, 4], &[]))
                .with_pre(Rat::ONE, term(&[1], &[]))
                .with_online(Rat::ONE, term(&[2], &[1]))
                .with_pre(Rat::ONE, term(&[4], &[]))
                .with_online(Rat::ONE, term(&[3], &[4]))
                .with_online(Rat::ONE, term(&[1, 4], &[])),
            j().with_pre(Rat::int(2), term(&[2, 4], &[]))
                .with_pre(Rat::int(2), term(&[1, 3], &[]))
                .with_online(Rat::ONE, term(&[1, 2, 3], &[])),
        );
        assert!(flow.is_valid());
    }

    /// Section 6.1 joint inequality for k-set intersection with k = 3
    /// (variables x1..x3 are the sets, x4 = y is the element):
    /// `h_S(34) + Σ_{i∈[2]} (h_S(i|4) + h_T(4)) + 2 h_T(123)
    ///  ≥ h_S(1234) + 2 h_T(1234)`.
    #[test]
    fn k_set_intersection_k3() {
        let flow = JointFlow::new(
            4,
            j().with_pre(Rat::ONE, term(&[3, 4], &[]))
                .with_pre(Rat::ONE, term(&[1], &[4]))
                .with_online(Rat::ONE, term(&[4], &[]))
                .with_pre(Rat::ONE, term(&[2], &[4]))
                .with_online(Rat::ONE, term(&[4], &[]))
                .with_online(Rat::int(2), term(&[1, 2, 3], &[])),
            j().with_pre(Rat::ONE, term(&[1, 2, 3, 4], &[]))
                .with_online(Rat::int(2), term(&[1, 2, 3, 4], &[])),
        );
        assert!(flow.is_valid());
    }

    /// Example E.8, rule ρ1 for 4-reachability:
    /// `h_S(1) + h_T(2|1) + h_S(5) + h_T(4|5) + h_T(15)
    ///  ≥ h_S(15) + h_T(1245)`.
    #[test]
    fn four_reach_rho1() {
        let flow = JointFlow::new(
            5,
            j().with_pre(Rat::ONE, term(&[1], &[]))
                .with_online(Rat::ONE, term(&[2], &[1]))
                .with_pre(Rat::ONE, term(&[5], &[]))
                .with_online(Rat::ONE, term(&[4], &[5]))
                .with_online(Rat::ONE, term(&[1, 5], &[])),
            j().with_pre(Rat::ONE, term(&[1, 5], &[]))
                .with_online(Rat::ONE, term(&[1, 2, 4, 5], &[])),
        );
        assert!(flow.is_valid());
    }

    /// A deliberately-false joint inequality: dropping the `h_T(13)` budget
    /// terms from the running example breaks it.
    #[test]
    fn missing_access_term_invalidates() {
        let flow = JointFlow::new(
            3,
            j().with_pre(Rat::ONE, term(&[1], &[]))
                .with_online(Rat::ONE, term(&[2], &[1]))
                .with_pre(Rat::ONE, term(&[3], &[]))
                .with_online(Rat::ONE, term(&[2], &[3])),
            j().with_pre(Rat::ONE, term(&[1, 3], &[]))
                .with_online(Rat::int(2), term(&[1, 2, 3], &[])),
        );
        assert!(!flow.is_valid());
    }
}
