//! Space-time tradeoff computation for 2-phase disjunctive rules.
//!
//! This module is the computational heart of the reproduction. Given the
//! *shape* of a 2-phase disjunctive rule (its S-target and T-target
//! schemas) and the degree-constraint statistics of the input, it answers
//! the two questions the paper answers analytically:
//!
//! 1. **`OBJ(S)` sweeps** ([`time_exponent_at`], [`TradeoffCurve`]): for a
//!    concrete space-budget exponent `σ = log_{|D|} S`, the best achievable
//!    online-time exponent `τ = log_{|D|} T` — equation (12) of the paper,
//!    solved exactly as one LP over the product polymatroid cone. Sweeping
//!    `σ` regenerates the curves of Figure 4a/4b.
//! 2. **Symbolic tradeoff verification** ([`verify_tradeoff`]): whether a
//!    claimed tradeoff `S^w · T^v ≾ |D|^c · |Q_A|^d` holds for *all*
//!    database and access-request sizes — the statements of Table 1,
//!    Section 6 and Appendix E. The check treats `log|Q_A|` as an LP
//!    variable, so a single LP covers every access-request size.
//!
//! The LP encodes: elemental polymatroid inequalities for `h_S` and `h_T`,
//! the degree constraints `DC` (both phases), the access constraints `AC`
//! (online phase only), and the split constraints `SC` that couple the two
//! phases (Definition C.2).

use crate::lp::{Lp, LpOutcome, Relation};
use crate::polycone::PolyVars;
use cqap_common::{Rat, VarSet};
use cqap_query::Cqap;
use std::fmt;

/// The shape of a 2-phase disjunctive rule: the schemas of its S-targets
/// (preprocessing) and T-targets (online). See Definition 4.1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleShape {
    /// Number of query variables `n`.
    pub num_vars: usize,
    /// S-target schemas `B_S`.
    pub s_targets: Vec<VarSet>,
    /// T-target schemas `B_T`.
    pub t_targets: Vec<VarSet>,
}

impl RuleShape {
    /// Creates a rule shape, deduplicating targets.
    pub fn new(num_vars: usize, s_targets: Vec<VarSet>, t_targets: Vec<VarSet>) -> Self {
        let mut s = s_targets;
        let mut t = t_targets;
        s.sort_unstable();
        s.dedup();
        t.sort_unstable();
        t.dedup();
        RuleShape {
            num_vars,
            s_targets: s,
            t_targets: t,
        }
    }

    /// Paper-style label such as `T134 ∨ T124 ∨ S14`.
    pub fn label(&self) -> String {
        let fmt_set = |s: &VarSet, tag: char| {
            let digits: String = s.iter().map(|v| (v + 1).to_string()).collect();
            format!("{tag}{digits}")
        };
        let mut parts: Vec<String> = self.t_targets.iter().map(|s| fmt_set(s, 'T')).collect();
        parts.extend(self.s_targets.iter().map(|s| fmt_set(s, 'S')));
        parts.join(" ∨ ")
    }
}

/// A symbolic log-size `d · log|D| + q · log|Q_A|`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogSize {
    /// Coefficient of `log|D|`.
    pub d: Rat,
    /// Coefficient of `log|Q_A|`.
    pub q: Rat,
}

impl LogSize {
    /// `log|D|` (the size of one input relation).
    pub fn db() -> Self {
        LogSize {
            d: Rat::ONE,
            q: Rat::ZERO,
        }
    }

    /// `log|Q_A|` (the size of the access request).
    pub fn access() -> Self {
        LogSize {
            d: Rat::ZERO,
            q: Rat::ONE,
        }
    }

    /// Evaluates at `log|D| = 1` and the given `log|Q_A|`.
    pub fn eval(&self, log_q: Rat) -> Rat {
        self.d + self.q * log_q
    }
}

/// A single symbolic degree/cardinality constraint used by the LP layer.
#[derive(Clone, Copy, Debug)]
pub struct StatConstraint {
    /// Conditioning variables `X` (empty for a cardinality constraint).
    pub on: VarSet,
    /// Constrained variables `Y`.
    pub of: VarSet,
    /// The symbolic bound `N_{Y|X}`.
    pub size: LogSize,
}

/// Symbolic input statistics: the degree constraints `DC` guarded by the
/// database and `AC` guarded by the access request, with bounds expressed
/// in units of `log|D|` and `log|Q_A|`.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Number of query variables.
    pub num_vars: usize,
    /// Constraints guarded by input relations.
    pub dc: Vec<StatConstraint>,
    /// Constraints guarded by the access request.
    pub ac: Vec<StatConstraint>,
}

impl Stats {
    /// The "uniform" statistics used throughout the paper's examples: every
    /// atom's variable set gets the cardinality bound `|D|`, and the access
    /// pattern gets the cardinality bound `|Q_A|`.
    pub fn uniform_for_cqap(cqap: &Cqap) -> Stats {
        let mut dc: Vec<StatConstraint> = Vec::new();
        for edge in cqap.hypergraph().edges() {
            if dc.iter().any(|c| c.of == *edge && c.on.is_empty()) {
                continue;
            }
            dc.push(StatConstraint {
                on: VarSet::EMPTY,
                of: *edge,
                size: LogSize::db(),
            });
        }
        let ac = if cqap.access().is_empty() {
            Vec::new()
        } else {
            vec![StatConstraint {
                on: VarSet::EMPTY,
                of: cqap.access(),
                size: LogSize::access(),
            }]
        };
        Stats {
            num_vars: cqap.num_vars(),
            dc,
            ac,
        }
    }

    /// Adds an extra degree constraint guarded by the database.
    pub fn add_dc(&mut self, on: VarSet, of: VarSet, size: LogSize) {
        self.dc.push(StatConstraint { on, of, size });
    }

    /// Adds an extra degree constraint guarded by the access request.
    pub fn add_ac(&mut self, on: VarSet, of: VarSet, size: LogSize) {
        self.ac.push(StatConstraint { on, of, size });
    }

    /// The split constraints `SC` spanned by the cardinality constraints of
    /// `DC` (Definition C.2): one `(X, Y | X, N_Z)` triple for every
    /// cardinality constraint `(∅, Z, N_Z)` and every `∅ ≠ X ⊂ Y ⊆ Z`.
    pub fn split_constraints(&self) -> Vec<(VarSet, VarSet, LogSize)> {
        let mut out = Vec::new();
        for c in &self.dc {
            if !c.on.is_empty() {
                continue;
            }
            for y in c.of.subsets() {
                if y.len() < 2 {
                    continue;
                }
                for x in y.proper_nonempty_subsets() {
                    out.push((x, y, c.size));
                }
            }
        }
        out
    }
}

/// A claimed symbolic tradeoff `S^{s_exp} · T^{t_exp} ≾ |D|^{d_exp} ·
/// |Q_A|^{q_exp}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SymbolicTradeoff {
    /// Exponent of the space budget `S`.
    pub s_exp: Rat,
    /// Exponent of the answering time `T`.
    pub t_exp: Rat,
    /// Exponent of the database size `|D|`.
    pub d_exp: Rat,
    /// Exponent of the access-request size `|Q_A|`.
    pub q_exp: Rat,
}

impl SymbolicTradeoff {
    /// Convenience constructor from integer exponents.
    pub fn new(s_exp: i64, t_exp: i64, d_exp: i64, q_exp: i64) -> Self {
        SymbolicTradeoff {
            s_exp: Rat::int(s_exp as i128),
            t_exp: Rat::int(t_exp as i128),
            d_exp: Rat::int(d_exp as i128),
            q_exp: Rat::int(q_exp as i128),
        }
    }
}

impl fmt::Display for SymbolicTradeoff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let exp = |e: Rat| {
            if e == Rat::ONE {
                String::new()
            } else {
                format!("^{e}")
            }
        };
        let mut lhs = Vec::new();
        if !self.s_exp.is_zero() {
            lhs.push(format!("S{}", exp(self.s_exp)));
        }
        if !self.t_exp.is_zero() {
            lhs.push(format!("T{}", exp(self.t_exp)));
        }
        let mut rhs = Vec::new();
        if !self.d_exp.is_zero() {
            rhs.push(format!("|D|{}", exp(self.d_exp)));
        }
        if !self.q_exp.is_zero() {
            rhs.push(format!("|Q|{}", exp(self.q_exp)));
        }
        if rhs.is_empty() {
            rhs.push("1".to_string());
        }
        write!(f, "{} ≾ {}", lhs.join("·"), rhs.join("·"))
    }
}

/// One point of a space-time tradeoff curve, in `log_{|D|}` units.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TradeoffPoint {
    /// `log_{|D|} S`.
    pub space: Rat,
    /// `log_{|D|} T`.
    pub time: Rat,
}

/// A piecewise-linear space-time tradeoff curve sampled at a set of space
/// budgets (Figure 4a/4b).
#[derive(Clone, Debug, Default)]
pub struct TradeoffCurve {
    /// The sampled points, in increasing space order.
    pub points: Vec<TradeoffPoint>,
}

impl TradeoffCurve {
    /// The time exponent at the given space exponent, if sampled.
    pub fn time_at(&self, space: Rat) -> Option<Rat> {
        self.points
            .iter()
            .find(|p| p.space == space)
            .map(|p| p.time)
    }

    /// Whether the curve is non-increasing in space (more space never
    /// hurts).
    pub fn is_monotone(&self) -> bool {
        self.points
            .windows(2)
            .all(|w| w[0].space <= w[1].space && w[0].time >= w[1].time)
    }
}

/// Builds the common part of the tradeoff LP: two polymatroid blocks, the
/// DC constraints (both phases), the AC constraints (online phase), and the
/// SC coupling constraints. Returns the LP and the two variable blocks.
///
/// When `q_var` is `Some(idx)`, `log|Q_A|` is the LP variable `idx` and the
/// symbolic bounds become `h(...) − q_coeff · q ≤ d_coeff`; otherwise the
/// bounds are evaluated at the fixed `log_q`.
fn base_lp(
    stats: &Stats,
    extra_vars: usize,
    q_var: Option<usize>,
    log_q: Rat,
) -> (Lp, PolyVars, PolyVars) {
    let n = stats.num_vars;
    let block = PolyVars::block_len(n);
    let pre = PolyVars { n, base: 0 };
    let online = PolyVars { n, base: block };
    let mut lp = Lp::new(2 * block + extra_vars);
    pre.add_polymatroid_constraints(&mut lp);
    online.add_polymatroid_constraints(&mut lp);

    let mut add_bound = |row: Vec<(usize, Rat)>, size: LogSize| {
        let mut row = row;
        let rhs = match q_var {
            Some(q) => {
                if !size.q.is_zero() {
                    row.push((q, -size.q));
                }
                size.d
            }
            None => size.eval(log_q),
        };
        lp.add_constraint(row, Relation::Le, rhs);
    };

    // DC: both phases. AC: online phase only.
    for c in &stats.dc {
        for pv in [&pre, &online] {
            let mut row = Vec::new();
            pv.push_conditional(&mut row, Rat::ONE, c.of, c.on);
            add_bound(row, c.size);
        }
    }
    for c in &stats.ac {
        let mut row = Vec::new();
        online.push_conditional(&mut row, Rat::ONE, c.of, c.on);
        add_bound(row, c.size);
    }
    // SC: h_S(X) + h_T(Y|X) ≤ N_Z and h_S(Y|X) + h_T(X) ≤ N_Z.
    for (x, y, size) in stats.split_constraints() {
        let mut row = Vec::new();
        pre.push(&mut row, Rat::ONE, x);
        online.push_conditional(&mut row, Rat::ONE, y, x);
        add_bound(row, size);

        let mut row = Vec::new();
        pre.push_conditional(&mut row, Rat::ONE, y, x);
        online.push(&mut row, Rat::ONE, x);
        add_bound(row, size);
    }
    (lp, pre, online)
}

/// The best achievable online-time exponent `τ = log_{|D|} T` for a rule at
/// space budget `S = |D|^σ` and access-request size `|Q_A| = |D|^{log_q}`
/// — equation (12) of the paper, solved exactly.
///
/// Returns `Some(0)` when the budget suffices to materialize every
/// S-target for every input (the LP of (12) is infeasible), and `None` when
/// the online time is unbounded under the given statistics (which indicates
/// missing constraints rather than a meaningful tradeoff).
pub fn time_exponent_at(
    rule: &RuleShape,
    stats: &Stats,
    sigma: Rat,
    log_q: Rat,
) -> Option<Rat> {
    assert_eq!(rule.num_vars, stats.num_vars, "rule/stats variable mismatch");
    if rule.t_targets.is_empty() {
        return Some(Rat::ZERO);
    }
    let n = stats.num_vars;
    let block = PolyVars::block_len(n);
    let tmin = 2 * block; // index of the auxiliary min-variable
    let (mut lp, pre, online) = base_lp(stats, 1, None, log_q);
    lp.set_objective(tmin, Rat::ONE);
    for b in &rule.t_targets {
        // tmin − h_T(B) ≤ 0.
        let mut row = vec![(tmin, Rat::ONE)];
        online.push(&mut row, -Rat::ONE, *b);
        lp.add_constraint(row, Relation::Le, Rat::ZERO);
    }
    for b in &rule.s_targets {
        // h_S(B) ≥ σ.
        let mut row = Vec::new();
        pre.push(&mut row, Rat::ONE, *b);
        lp.add_constraint(row, Relation::Ge, sigma);
    }
    match lp.solve() {
        LpOutcome::Optimal { value, .. } => Some(value.max(Rat::ZERO)),
        LpOutcome::Infeasible => Some(Rat::ZERO),
        LpOutcome::Unbounded => None,
    }
}

/// Verifies a claimed symbolic tradeoff `S^w · T^v ≾ |D|^c · |Q_A|^d` for a
/// rule under the given statistics, for **all** database and access-request
/// sizes.
///
/// The check maximizes `w · min_B h_S(B) + v · min_B h_T(B) − d · log|Q_A|`
/// over the coupled polymatroid cone with `log|D| = 1` and `log|Q_A|` a free
/// non-negative variable; the claim holds iff the optimum is at most `c`.
pub fn verify_tradeoff(rule: &RuleShape, stats: &Stats, claim: &SymbolicTradeoff) -> bool {
    assert_eq!(rule.num_vars, stats.num_vars, "rule/stats variable mismatch");
    let n = stats.num_vars;
    let block = PolyVars::block_len(n);
    let tmin = 2 * block;
    let smin = 2 * block + 1;
    let qvar = 2 * block + 2;
    let (mut lp, pre, online) = base_lp(stats, 3, Some(qvar), Rat::ZERO);

    if !rule.t_targets.is_empty() {
        lp.set_objective(tmin, claim.t_exp);
        for b in &rule.t_targets {
            let mut row = vec![(tmin, Rat::ONE)];
            online.push(&mut row, -Rat::ONE, *b);
            lp.add_constraint(row, Relation::Le, Rat::ZERO);
        }
    }
    if !rule.s_targets.is_empty() {
        lp.set_objective(smin, claim.s_exp);
        for b in &rule.s_targets {
            let mut row = vec![(smin, Rat::ONE)];
            pre.push(&mut row, -Rat::ONE, *b);
            lp.add_constraint(row, Relation::Le, Rat::ZERO);
        }
    }
    lp.set_objective(qvar, -claim.q_exp);
    match lp.solve() {
        LpOutcome::Optimal { value, .. } => value <= claim.d_exp,
        LpOutcome::Unbounded => false,
        LpOutcome::Infeasible => unreachable!("the coupled cone contains 0"),
    }
}

/// Whether a claimed tradeoff is *tight* in the `|D|` exponent: the claim
/// holds, but lowering the `|D|` exponent by `epsilon` breaks it.
pub fn is_tight(
    rule: &RuleShape,
    stats: &Stats,
    claim: &SymbolicTradeoff,
    epsilon: Rat,
) -> bool {
    if !verify_tradeoff(rule, stats, claim) {
        return false;
    }
    let weaker = SymbolicTradeoff {
        d_exp: claim.d_exp - epsilon,
        ..*claim
    };
    !verify_tradeoff(rule, stats, &weaker)
}

/// Samples the combined tradeoff curve of a *set* of rules: at each space
/// budget, the answering time is the maximum over the rules (every rule
/// must be answered; Section 4.3).
pub fn combined_curve(
    rules: &[RuleShape],
    stats: &Stats,
    sigmas: &[Rat],
    log_q: Rat,
) -> TradeoffCurve {
    let mut points = Vec::with_capacity(sigmas.len());
    for &sigma in sigmas {
        let mut worst = Rat::ZERO;
        for rule in rules {
            let tau = time_exponent_at(rule, stats, sigma, log_q)
                .expect("online time should be bounded under the given statistics");
            worst = worst.max(tau);
        }
        points.push(TradeoffPoint {
            space: sigma,
            time: worst,
        });
    }
    points.sort_by(|a, b| a.space.cmp(&b.space));
    TradeoffCurve { points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_common::rat::rat;
    use cqap_common::vars;
    use cqap_query::families;

    fn two_reach_rule_and_stats() -> (RuleShape, Stats) {
        let q = families::k_path_distinct(2);
        let stats = Stats::uniform_for_cqap(&q);
        // T123 ∨ S13 — the only rule of the Section 5 running example.
        let rule = RuleShape::new(3, vec![vars![1, 3]], vec![vars![1, 2, 3]]);
        (rule, stats)
    }

    #[test]
    fn stats_construction() {
        let q = families::k_path_distinct(3);
        let stats = Stats::uniform_for_cqap(&q);
        assert_eq!(stats.dc.len(), 3);
        assert_eq!(stats.ac.len(), 1);
        assert_eq!(stats.ac[0].of, vars![1, 4]);
        // Each binary cardinality constraint spawns two split pairs.
        assert_eq!(stats.split_constraints().len(), 6);
    }

    #[test]
    fn section5_tradeoff_s_t2_le_d2_q2() {
        let (rule, stats) = two_reach_rule_and_stats();
        assert_eq!(rule.label(), "T123 ∨ S13");
        // S·T² ≾ |D|²·|Q|² (Section 5 / Example E.6).
        let claim = SymbolicTradeoff::new(1, 2, 2, 2);
        assert!(verify_tradeoff(&rule, &stats, &claim));
        assert!(is_tight(&rule, &stats, &claim, rat(1, 10)));
        // The stronger S·T² ≾ |D|^{3/2} is false.
        let too_strong = SymbolicTradeoff {
            d_exp: rat(3, 2),
            ..claim
        };
        assert!(!verify_tradeoff(&rule, &stats, &too_strong));
    }

    #[test]
    fn section5_obj_sweep() {
        let (rule, stats) = two_reach_rule_and_stats();
        // |Q| = 1: S·T² ≾ |D|² means τ(σ) = (2 − σ)/2 until it hits 0.
        assert_eq!(
            time_exponent_at(&rule, &stats, Rat::ZERO, Rat::ZERO),
            Some(Rat::ONE)
        );
        assert_eq!(
            time_exponent_at(&rule, &stats, Rat::ONE, Rat::ZERO),
            Some(rat(1, 2))
        );
        assert_eq!(
            time_exponent_at(&rule, &stats, rat(3, 2), Rat::ZERO),
            Some(rat(1, 4))
        );
        assert_eq!(
            time_exponent_at(&rule, &stats, Rat::int(2), Rat::ZERO),
            Some(Rat::ZERO)
        );
    }

    #[test]
    fn square_query_tradeoff() {
        // Example 5.2 / E.5: S·T² ≾ |D|²·|Q|² for both rules of the square
        // CQAP.
        let q = families::square(true);
        let stats = Stats::uniform_for_cqap(&q);
        let rule1 = RuleShape::new(4, vec![vars![1, 3]], vec![vars![1, 3, 4]]);
        let rule2 = RuleShape::new(4, vec![vars![1, 3]], vec![vars![1, 2, 3]]);
        let claim = SymbolicTradeoff::new(1, 2, 2, 2);
        assert!(verify_tradeoff(&rule1, &stats, &claim));
        assert!(verify_tradeoff(&rule2, &stats, &claim));
        assert!(is_tight(&rule1, &stats, &claim, rat(1, 10)));
    }

    #[test]
    fn k_set_intersection_tradeoffs() {
        // Section 6.1 (non-Boolean k-set intersection, S-target over the
        // full head [k+1]): S·T^{k−1} ≾ |D|^k · |Q|^{k−1}.
        for k in 2..=3usize {
            let q = families::k_set_intersection(k);
            let stats = Stats::uniform_for_cqap(&q);
            let full = VarSet::prefix(k + 1);
            let rule = RuleShape::new(k + 1, vec![full], vec![full]);
            let ki = k as i64;
            assert!(verify_tradeoff(
                &rule,
                &stats,
                &SymbolicTradeoff::new(1, ki - 1, ki, ki - 1)
            ));
            // But S·T^{k−1} ≾ |D|^{k−1}·|Q|^{k−1} is too strong.
            assert!(!verify_tradeoff(
                &rule,
                &stats,
                &SymbolicTradeoff::new(1, ki - 1, ki - 1, ki - 1)
            ));
        }
    }

    #[test]
    fn k_set_disjointness_edge_cover_tradeoff() {
        // Example 6.2 (Boolean k-set disjointness, S-target over the access
        // pattern A = [k]): S·T^k ≾ |D|^k · |Q|^k from the all-ones edge
        // cover with slack k (Theorem 6.1).
        for k in 2..=3usize {
            let q = families::k_set_disjointness(k);
            let stats = Stats::uniform_for_cqap(&q);
            let access = VarSet::prefix(k);
            let full = VarSet::prefix(k + 1);
            let rule = RuleShape::new(k + 1, vec![access], vec![full]);
            let ki = k as i64;
            assert!(verify_tradeoff(
                &rule,
                &stats,
                &SymbolicTradeoff::new(1, ki, ki, ki)
            ));
        }
    }

    #[test]
    fn example_63_tree_decomposition_tradeoff() {
        // Example 6.3: 4-reachability via the decomposition
        // {x1,x2,x4,x5} → {x2,x3,x4} gives S^{3/2}·T ≾ |Q|·|D|³.
        let q = families::k_path_distinct(4);
        let stats = Stats::uniform_for_cqap(&q);
        let rule = RuleShape::new(
            5,
            vec![vars![1, 5], vars![2, 4]],
            vec![vars![2, 3, 4]],
        );
        let claim = SymbolicTradeoff {
            s_exp: rat(3, 2),
            t_exp: Rat::ONE,
            d_exp: Rat::int(3),
            q_exp: Rat::ONE,
        };
        assert!(verify_tradeoff(&rule, &stats, &claim));
    }

    #[test]
    fn monotone_combined_curve() {
        let (rule, stats) = two_reach_rule_and_stats();
        let sigmas: Vec<Rat> = (0..=8).map(|i| rat(i, 4)).collect();
        let curve = combined_curve(std::slice::from_ref(&rule), &stats, &sigmas, Rat::ZERO);
        assert_eq!(curve.points.len(), 9);
        assert!(curve.is_monotone());
        assert_eq!(curve.time_at(Rat::int(2)), Some(Rat::ZERO));
    }

    #[test]
    fn rule_with_no_t_targets_answers_in_preprocessing() {
        let (_, stats) = two_reach_rule_and_stats();
        let rule = RuleShape::new(3, vec![vars![1, 3]], vec![]);
        assert_eq!(
            time_exponent_at(&rule, &stats, Rat::ZERO, Rat::ZERO),
            Some(Rat::ZERO)
        );
    }

    #[test]
    fn symbolic_display() {
        let t = SymbolicTradeoff::new(1, 2, 2, 2);
        assert_eq!(format!("{t}"), "S·T^2 ≾ |D|^2·|Q|^2");
        let t = SymbolicTradeoff {
            s_exp: rat(3, 2),
            t_exp: Rat::ONE,
            d_exp: Rat::int(3),
            q_exp: Rat::ZERO,
        };
        assert_eq!(format!("{t}"), "S^3/2·T ≾ |D|^3");
    }
}
