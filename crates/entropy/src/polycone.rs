//! Helpers for encoding the polymatroid cone `Γ_n` into a linear program.
//!
//! A polymatroid on `[n]` is encoded with one LP variable per *non-empty*
//! subset of `[n]` (the value on `∅` is identically zero). The cone is cut
//! out by the *elemental* Shannon inequalities, which are known to generate
//! all Shannon inequalities:
//!
//! * monotonicity: `h([n]) − h([n] \ {i}) ≥ 0` for every `i`;
//! * submodularity: `h(X ∪ {i}) + h(X ∪ {j}) − h(X ∪ {i,j}) − h(X) ≥ 0`
//!   for every `X ⊆ [n] \ {i,j}`, `i < j`.
//!
//! Non-negativity comes for free from the LP's `x ≥ 0` variable domain.

use crate::lp::{Lp, Relation};
use cqap_common::{Rat, VarSet};

/// Maps the non-empty subsets of `[n]` to a contiguous block of LP variable
/// indices starting at `base`.
#[derive(Clone, Copy, Debug)]
pub struct PolyVars {
    /// Ground-set size.
    pub n: usize,
    /// First LP variable index of the block.
    pub base: usize,
}

impl PolyVars {
    /// Number of LP variables used by one polymatroid block.
    pub fn block_len(n: usize) -> usize {
        (1usize << n) - 1
    }

    /// The LP variable index of `h(set)`; `None` for the empty set (whose
    /// value is identically zero and therefore contributes nothing).
    pub fn var(&self, set: VarSet) -> Option<usize> {
        if set.is_empty() {
            None
        } else {
            let mask = set.0 as usize;
            debug_assert!(mask < (1 << self.n), "set outside the ground set");
            Some(self.base + mask - 1)
        }
    }

    /// Appends `coeff · h(set)` to a constraint row (no-op for `∅`).
    pub fn push(&self, row: &mut Vec<(usize, Rat)>, coeff: Rat, set: VarSet) {
        if let Some(v) = self.var(set) {
            row.push((v, coeff));
        }
    }

    /// Appends `coeff · h(of | on) = coeff · (h(of ∪ on) − h(on))`.
    pub fn push_conditional(&self, row: &mut Vec<(usize, Rat)>, coeff: Rat, of: VarSet, on: VarSet) {
        self.push(row, coeff, of.union(on));
        self.push(row, -coeff, on);
    }

    /// Adds the elemental polymatroid inequalities for this block to `lp`.
    pub fn add_polymatroid_constraints(&self, lp: &mut Lp) {
        let full = VarSet::prefix(self.n);
        // Monotonicity at the top: h([n]\{i}) − h([n]) ≤ 0.
        for i in full.iter() {
            let mut row = Vec::with_capacity(2);
            self.push(&mut row, Rat::ONE, full.remove(i));
            self.push(&mut row, -Rat::ONE, full);
            lp.add_constraint(row, Relation::Le, Rat::ZERO);
        }
        // Elemental submodularity:
        // h(X∪{i,j}) + h(X) − h(X∪{i}) − h(X∪{j}) ≤ 0.
        for x in full.subsets() {
            let rest = full.difference(x).to_vec();
            for (a, &i) in rest.iter().enumerate() {
                for &j in &rest[a + 1..] {
                    let mut row = Vec::with_capacity(4);
                    self.push(&mut row, Rat::ONE, x.insert(i).insert(j));
                    self.push(&mut row, Rat::ONE, x);
                    self.push(&mut row, -Rat::ONE, x.insert(i));
                    self.push(&mut row, -Rat::ONE, x.insert(j));
                    lp.add_constraint(row, Relation::Le, Rat::ZERO);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::LpOutcome;
    use cqap_common::vars;

    #[test]
    fn variable_indexing() {
        let pv = PolyVars { n: 3, base: 10 };
        assert_eq!(PolyVars::block_len(3), 7);
        assert_eq!(pv.var(VarSet::EMPTY), None);
        assert_eq!(pv.var(vars![1]), Some(10));
        assert_eq!(pv.var(vars![1, 2, 3]), Some(16));
    }

    #[test]
    fn conditional_rows() {
        let pv = PolyVars { n: 3, base: 0 };
        let mut row = Vec::new();
        pv.push_conditional(&mut row, Rat::ONE, vars![2], vars![1]);
        // h(12) − h(1).
        assert_eq!(row.len(), 2);
        assert!(row.contains(&(pv.var(vars![1, 2]).unwrap(), Rat::ONE)));
        assert!(row.contains(&(pv.var(vars![1]).unwrap(), -Rat::ONE)));
    }

    #[test]
    fn shannon_basic_inequality_follows_from_elemental() {
        // max h(1) + h(2) - h(12) over the cone is 0 would be wrong — that
        // quantity (the mutual information) is unbounded? No: it is
        // non-negative and can grow with h, so maximizing it is unbounded;
        // instead verify that h(12) ≤ h(1) + h(2) always holds by maximizing
        // h(12) − h(1) − h(2) and checking the optimum is 0.
        let n = 2;
        let mut lp = Lp::new(PolyVars::block_len(n));
        let pv = PolyVars { n, base: 0 };
        pv.add_polymatroid_constraints(&mut lp);
        lp.set_objective(pv.var(vars![1, 2]).unwrap(), Rat::ONE);
        lp.set_objective(pv.var(vars![1]).unwrap(), -Rat::ONE);
        lp.set_objective(pv.var(vars![2]).unwrap(), -Rat::ONE);
        assert_eq!(lp.solve().value(), Some(Rat::ZERO));
    }

    #[test]
    fn monotonicity_follows_for_non_top_sets() {
        // h(1) ≤ h(13) is not an elemental inequality for n = 3, but must
        // follow from the elemental ones: maximize h(1) − h(13) → 0.
        let n = 3;
        let mut lp = Lp::new(PolyVars::block_len(n));
        let pv = PolyVars { n, base: 0 };
        pv.add_polymatroid_constraints(&mut lp);
        lp.set_objective(pv.var(vars![1]).unwrap(), Rat::ONE);
        lp.set_objective(pv.var(vars![1, 3]).unwrap(), -Rat::ONE);
        assert_eq!(lp.solve().value(), Some(Rat::ZERO));
    }

    #[test]
    fn non_shannon_direction_is_unbounded() {
        // Maximizing h(12) alone is unbounded over the cone.
        let n = 2;
        let mut lp = Lp::new(PolyVars::block_len(n));
        let pv = PolyVars { n, base: 0 };
        pv.add_polymatroid_constraints(&mut lp);
        lp.set_objective(pv.var(vars![1, 2]).unwrap(), Rat::ONE);
        assert_eq!(lp.solve(), LpOutcome::Unbounded);
    }
}
