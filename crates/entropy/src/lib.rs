//! # cqap-entropy
//!
//! The information-theoretic half of the paper's framework:
//!
//! * [`lp`] — a from-scratch exact-rational simplex solver (two-phase,
//!   Bland's rule). Every optimum in this crate is an exact rational, so the
//!   tradeoff exponents reported by the reproduction are exact, not floats.
//! * [`setfn`] — concrete set functions over variable subsets with
//!   polymatroid checks (used heavily by the property tests).
//! * [`terms`] — conditional polymatroid terms `h(Y|X)` and linear
//!   combinations of them, for one polymatroid or for the joint
//!   `(h_S, h_T)` pair.
//! * [`flow`] — Shannon-flow inequalities (Appendix D.1), the four proof
//!   rules (submodularity, monotonicity, composition, decomposition), and
//!   proof-sequence verification.
//! * [`joint`] — joint Shannon-flow inequalities (Definition D.4) and their
//!   LP-based validity check.
//! * [`tradeoff`] — the heart of the reproduction: given a 2-phase
//!   disjunctive rule's target sets and the degree-constraint statistics, it
//!   computes the intrinsic space-time tradeoff — both as an exact
//!   `OBJ(S)` sweep (the curves of Figure 4) and as a validity check for the
//!   symbolic `S^w · T^v ≾ |D|^c · |Q|^d` tradeoffs the paper tabulates
//!   (Table 1 and the Section 6 / Appendix E examples).

pub mod flow;
pub mod joint;
pub mod lp;
pub mod polycone;
pub mod setfn;
pub mod terms;
pub mod tradeoff;

pub use flow::{ProofSequence, ProofStep, ShannonFlow};
pub use joint::JointFlow;
pub use lp::{Lp, LpOutcome, Relation as LpRelation};
pub use setfn::SetFunction;
pub use terms::{CondTerm, JointLinComb, LinComb, Phase};
pub use tradeoff::{RuleShape, Stats, SymbolicTradeoff, TradeoffCurve, TradeoffPoint};
