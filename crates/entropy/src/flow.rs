//! Shannon-flow inequalities and proof sequences (Appendix D.1).
//!
//! A Shannon-flow inequality `⟨δ, h⟩ ≥ ⟨λ, h⟩` holds for every polymatroid
//! `h`. [`ShannonFlow::is_valid`] checks validity exactly by maximizing
//! `⟨λ − δ, h⟩` over the polymatroid cone: the inequality is valid iff the
//! optimum is 0 (the cone is pointed at the origin, so the only other
//! possible outcome is "unbounded").
//!
//! A [`ProofSequence`] is the paper's constructive certificate: a sequence
//! of weighted applications of the four rules (R1)–(R4) that transforms `δ`
//! into a vector dominating `λ` while staying non-negative.
//! [`ProofSequence::verify`] replays the steps and checks both conditions.

use crate::lp::{Lp, LpOutcome};
use crate::polycone::PolyVars;
use crate::terms::{CondTerm, LinComb};
use cqap_common::{FxHashMap, Rat, VarSet};

/// A Shannon-flow inequality `⟨δ, h⟩ ≥ ⟨λ, h⟩` over polymatroids on `[n]`.
#[derive(Clone, Debug)]
pub struct ShannonFlow {
    /// Ground-set size.
    pub num_vars: usize,
    /// The left-hand side `δ`.
    pub lhs: LinComb,
    /// The right-hand side `λ`.
    pub rhs: LinComb,
}

impl ShannonFlow {
    /// Creates an inequality.
    pub fn new(num_vars: usize, lhs: LinComb, rhs: LinComb) -> Self {
        ShannonFlow { num_vars, lhs, rhs }
    }

    /// Whether the inequality holds for every polymatroid on `[n]`.
    pub fn is_valid(&self) -> bool {
        let n = self.num_vars;
        let pv = PolyVars { n, base: 0 };
        let mut lp = Lp::new(PolyVars::block_len(n));
        pv.add_polymatroid_constraints(&mut lp);
        // objective = ⟨λ − δ, h⟩, accumulated per subset variable.
        let mut coeff: FxHashMap<usize, Rat> = FxHashMap::default();
        let mut accumulate = |comb: &LinComb, sign: Rat| {
            for (c, t) in comb.terms() {
                // h(of|on) = h(of ∪ on) − h(on).
                if let Some(v) = pv.var(t.of.union(t.on)) {
                    *coeff.entry(v).or_default() += sign * *c;
                }
                if let Some(v) = pv.var(t.on) {
                    *coeff.entry(v).or_default() -= sign * *c;
                }
            }
        };
        accumulate(&self.rhs, Rat::ONE);
        accumulate(&self.lhs, -Rat::ONE);
        for (v, c) in coeff {
            lp.set_objective(v, c);
        }
        match lp.solve() {
            LpOutcome::Optimal { value, .. } => !value.is_positive(),
            LpOutcome::Unbounded => false,
            LpOutcome::Infeasible => unreachable!("the polymatroid cone contains 0"),
        }
    }
}

/// One of the four proof rules of Appendix D.1, each a vector over
/// conditional terms that is non-positive for every polymatroid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProofStep {
    /// (R1) submodularity: `h(I∪J | J) − h(I | I∩J) ≤ 0` for incomparable
    /// `I ⊥ J`.
    Submodularity {
        /// The first incomparable set `I`.
        i: VarSet,
        /// The second incomparable set `J`.
        j: VarSet,
    },
    /// (R2) monotonicity: `−h(Y|∅) + h(X|∅) ≤ 0` for `X ⊂ Y`.
    Monotonicity {
        /// The smaller set `X`.
        x: VarSet,
        /// The larger set `Y`.
        y: VarSet,
    },
    /// (R3) composition: `h(Y|∅) − h(Y|X) − h(X|∅) ≤ 0` for `X ⊂ Y`.
    Composition {
        /// The inner set `X`.
        x: VarSet,
        /// The outer set `Y`.
        y: VarSet,
    },
    /// (R4) decomposition: `−h(Y|∅) + h(Y|X) + h(X|∅) ≤ 0` for `X ⊂ Y`.
    Decomposition {
        /// The inner set `X`.
        x: VarSet,
        /// The outer set `Y`.
        y: VarSet,
    },
}

impl ProofStep {
    /// The step as a sparse vector over conditional terms (the direction
    /// that is added to `δ` when the step is applied with positive weight).
    pub fn as_vector(&self) -> Vec<(Rat, CondTerm)> {
        match *self {
            ProofStep::Submodularity { i, j } => vec![
                (Rat::ONE, CondTerm::given(i.union(j), j)),
                (-Rat::ONE, CondTerm::given(i, i.intersect(j))),
            ],
            ProofStep::Monotonicity { x, y } => vec![
                (-Rat::ONE, CondTerm::plain(y)),
                (Rat::ONE, CondTerm::plain(x)),
            ],
            ProofStep::Composition { x, y } => vec![
                (Rat::ONE, CondTerm::plain(y)),
                (-Rat::ONE, CondTerm::given(y, x)),
                (-Rat::ONE, CondTerm::plain(x)),
            ],
            ProofStep::Decomposition { x, y } => vec![
                (-Rat::ONE, CondTerm::plain(y)),
                (Rat::ONE, CondTerm::given(y, x)),
                (Rat::ONE, CondTerm::plain(x)),
            ],
        }
    }

    /// Whether the step's side conditions hold (`I ⊥ J`, resp. `X ⊂ Y`).
    pub fn is_well_formed(&self) -> bool {
        match *self {
            ProofStep::Submodularity { i, j } => i.is_incomparable(j),
            ProofStep::Monotonicity { x, y }
            | ProofStep::Composition { x, y }
            | ProofStep::Decomposition { x, y } => x.is_strict_subset(y),
        }
    }

    /// The inequality `⟨step, h⟩ ≤ 0` expressed as a [`ShannonFlow`]
    /// (`0 ≥ step`), used to sanity-check each rule against the LP oracle.
    pub fn as_flow(&self, num_vars: usize) -> ShannonFlow {
        let mut rhs = LinComb::new();
        for (c, t) in self.as_vector() {
            rhs.add(c, t);
        }
        ShannonFlow::new(num_vars, LinComb::new(), rhs)
    }
}

/// A weighted sequence of proof steps (Appendix D.1).
#[derive(Clone, Debug, Default)]
pub struct ProofSequence {
    steps: Vec<(Rat, ProofStep)>,
}

/// The outcome of replaying a proof sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofOutcome {
    /// The sequence is a valid proof of `⟨δ,h⟩ ≥ ⟨λ,h⟩`.
    Valid,
    /// A step has an invalid side condition or non-positive weight.
    MalformedStep(usize),
    /// After applying step `index`, some coordinate of the running vector
    /// became negative.
    NegativeCoordinate {
        /// Index of the offending step.
        index: usize,
        /// The coordinate that went negative.
        term: CondTerm,
    },
    /// The final vector does not dominate `λ`.
    DoesNotDominate(CondTerm),
}

impl ProofSequence {
    /// The empty proof sequence.
    pub fn new() -> Self {
        ProofSequence::default()
    }

    /// Appends a step with the given positive weight.
    #[must_use]
    pub fn then(mut self, weight: Rat, step: ProofStep) -> Self {
        self.steps.push((weight, step));
        self
    }

    /// The steps.
    pub fn steps(&self) -> &[(Rat, ProofStep)] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Replays the sequence starting from `δ = lhs` and checks that (a)
    /// every step is well formed with positive weight, (b) the running
    /// vector stays non-negative, and (c) the final vector dominates `λ =
    /// rhs` coordinate-wise.
    pub fn verify(&self, flow: &ShannonFlow) -> ProofOutcome {
        let mut delta: FxHashMap<CondTerm, Rat> = FxHashMap::default();
        for (c, t) in flow.lhs.terms() {
            *delta.entry(*t).or_default() += *c;
        }
        for (idx, (w, step)) in self.steps.iter().enumerate() {
            if !w.is_positive() || !step.is_well_formed() {
                return ProofOutcome::MalformedStep(idx);
            }
            for (c, t) in step.as_vector() {
                *delta.entry(t).or_default() += *w * c;
            }
            if let Some((t, _)) = delta.iter().find(|(_, v)| v.is_negative()) {
                return ProofOutcome::NegativeCoordinate {
                    index: idx,
                    term: *t,
                };
            }
        }
        for (c, t) in flow.rhs.terms() {
            let have = delta.get(t).copied().unwrap_or(Rat::ZERO);
            if have < *c {
                return ProofOutcome::DoesNotDominate(*t);
            }
        }
        ProofOutcome::Valid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terms::term;
    use cqap_common::rat::rat;
    use cqap_common::vars;

    #[test]
    fn each_rule_is_a_valid_shannon_inequality() {
        let steps = [
            ProofStep::Submodularity {
                i: vars![1, 2],
                j: vars![2, 3],
            },
            ProofStep::Monotonicity {
                x: vars![1],
                y: vars![1, 2],
            },
            ProofStep::Composition {
                x: vars![1],
                y: vars![1, 2, 3],
            },
            ProofStep::Decomposition {
                x: vars![2],
                y: vars![1, 2],
            },
        ];
        for s in steps {
            assert!(s.is_well_formed());
            assert!(s.as_flow(3).is_valid(), "{s:?} should be ≤ 0");
        }
        assert!(!ProofStep::Submodularity {
            i: vars![1],
            j: vars![1, 2]
        }
        .is_well_formed());
        assert!(!ProofStep::Monotonicity {
            x: vars![1, 2],
            y: vars![1, 2]
        }
        .is_well_formed());
    }

    #[test]
    fn preprocessing_inequality_of_section_5() {
        // h(1) + h(3) ≥ h(13): the preprocessing Shannon-flow inequality of
        // the Section 5 running example.
        let flow = ShannonFlow::new(
            3,
            LinComb::new()
                .with(Rat::ONE, term(&[1], &[]))
                .with(Rat::ONE, term(&[3], &[])),
            LinComb::new().with(Rat::ONE, term(&[1, 3], &[])),
        );
        assert!(flow.is_valid());

        // Its proof sequence from the paper: one submodularity step
        // (h(1) ≥ h(13|3)) followed by one composition step
        // (h(13|3) + h(3) ≥ h(13)).
        let proof = ProofSequence::new()
            .then(
                Rat::ONE,
                ProofStep::Submodularity {
                    i: vars![1],
                    j: vars![3],
                },
            )
            .then(
                Rat::ONE,
                ProofStep::Composition {
                    x: vars![3],
                    y: vars![1, 3],
                },
            );
        assert_eq!(proof.verify(&flow), ProofOutcome::Valid);
    }

    #[test]
    fn online_inequality_of_section_5() {
        // h(2|1) + h(2|3) + 2 h(13) ≥ 2 h(123).
        let flow = ShannonFlow::new(
            3,
            LinComb::new()
                .with(Rat::ONE, term(&[2], &[1]))
                .with(Rat::ONE, term(&[2], &[3]))
                .with(Rat::int(2), term(&[1, 3], &[])),
            LinComb::new().with(Rat::int(2), term(&[1, 2, 3], &[])),
        );
        assert!(flow.is_valid());
    }

    #[test]
    fn invalid_inequality_rejected() {
        // h(1) ≥ h(12) is false.
        let flow = ShannonFlow::new(
            2,
            LinComb::new().with(Rat::ONE, term(&[1], &[])),
            LinComb::new().with(Rat::ONE, term(&[1, 2], &[])),
        );
        assert!(!flow.is_valid());
        // And halving the right side does not fix it.
        let flow2 = ShannonFlow::new(
            2,
            LinComb::new().with(Rat::ONE, term(&[1], &[])),
            LinComb::new().with(rat(3, 2), term(&[1], &[])),
        );
        assert!(!flow2.is_valid());
    }

    #[test]
    fn shearer_on_the_triangle() {
        // The classic 1/2(h(12)+h(23)+h(13)) ≥ h(123).
        let half = rat(1, 2);
        let flow = ShannonFlow::new(
            3,
            LinComb::new()
                .with(half, term(&[1, 2], &[]))
                .with(half, term(&[2, 3], &[]))
                .with(half, term(&[1, 3], &[])),
            LinComb::new().with(Rat::ONE, term(&[1, 2, 3], &[])),
        );
        assert!(flow.is_valid());
        // The same with coefficients 1/3 is false.
        let third = rat(1, 3);
        let bad = ShannonFlow::new(
            3,
            LinComb::new()
                .with(third, term(&[1, 2], &[]))
                .with(third, term(&[2, 3], &[]))
                .with(third, term(&[1, 3], &[])),
            LinComb::new().with(Rat::ONE, term(&[1, 2, 3], &[])),
        );
        assert!(!bad.is_valid());
    }

    #[test]
    fn proof_verifier_catches_problems() {
        let flow = ShannonFlow::new(
            3,
            LinComb::new()
                .with(Rat::ONE, term(&[1], &[]))
                .with(Rat::ONE, term(&[3], &[])),
            LinComb::new().with(Rat::ONE, term(&[1, 3], &[])),
        );
        // The empty proof does not dominate h(13).
        assert!(matches!(
            ProofSequence::new().verify(&flow),
            ProofOutcome::DoesNotDominate(_)
        ));
        // Applying composition before creating h(13|3) drives h(13|3)
        // negative.
        let premature = ProofSequence::new().then(
            Rat::ONE,
            ProofStep::Composition {
                x: vars![3],
                y: vars![1, 3],
            },
        );
        assert!(matches!(
            premature.verify(&flow),
            ProofOutcome::NegativeCoordinate { .. }
        ));
        // Zero weight is malformed.
        let zero = ProofSequence::new().then(
            Rat::ZERO,
            ProofStep::Monotonicity {
                x: vars![1],
                y: vars![1, 3],
            },
        );
        assert_eq!(zero.verify(&flow), ProofOutcome::MalformedStep(0));
    }
}
