//! Delta batches and the [`ApplyDelta`] seam.
//!
//! PRs 1–5 treat the database as frozen: every backend is build-once.
//! This crate introduces the vocabulary for *live* data: a [`DeltaBatch`]
//! is an ordered stream of `(relation, insert | delete, tuples)`
//! operations, and [`ApplyDelta`] is the seam every backend implements to
//! absorb one batch in place — the in-memory index updates its S-views and
//! recompiles its probe plans, the disk tier buffers LSM-style overlay
//! segments, shards route tuples by the routing variable, and the serving
//! runtime invalidates its answer cache.
//!
//! The semantic contract, enforced by the `delta_equivalence` proptest
//! harness, is **rebuild equivalence**: applying a batch incrementally
//! must leave every backend answering exactly like an index rebuilt from
//! scratch over the post-delta database.
//!
//! Batches are applied with *net-effect* semantics under the set
//! semantics of [`cqap_relation::Relation`]: operations are replayed in
//! order into a desired-presence map per relation, and only the net
//! difference against the base database is applied. Delete-then-reinsert
//! therefore cancels out, deleting an absent tuple is a no-op, and a
//! batch whose net effect is empty leaves the backend untouched (backends
//! use this to short-circuit without disturbing warm-path scratch state).

#![deny(missing_docs)]

use cqap_common::{CqapError, FxHashMap, Result, Tuple};
use cqap_relation::Database;

/// One kind of mutation in a [`DeltaBatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOp {
    /// Insert the tuples into the relation (duplicates are no-ops).
    Insert,
    /// Delete the tuples from the relation (absent tuples are no-ops).
    Delete,
}

/// An ordered stream of insert/delete operations against named relations.
///
/// Order matters *within* the batch: a delete followed by a re-insert of
/// the same tuple nets out to whatever the final operation says. The
/// whole batch is applied atomically against a snapshot of the base
/// database (net-effect semantics; see the crate docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaBatch {
    ops: Vec<(String, DeltaOp, Vec<Tuple>)>,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> Self {
        DeltaBatch::default()
    }

    /// Appends an insert operation for `relation`.
    pub fn insert(mut self, relation: impl Into<String>, tuples: Vec<Tuple>) -> Self {
        self.ops.push((relation.into(), DeltaOp::Insert, tuples));
        self
    }

    /// Appends a delete operation for `relation`.
    pub fn delete(mut self, relation: impl Into<String>, tuples: Vec<Tuple>) -> Self {
        self.ops.push((relation.into(), DeltaOp::Delete, tuples));
        self
    }

    /// Appends an operation in place (non-builder form).
    pub fn push(&mut self, relation: impl Into<String>, op: DeltaOp, tuples: Vec<Tuple>) {
        self.ops.push((relation.into(), op, tuples));
    }

    /// The operations in application order.
    pub fn ops(&self) -> &[(String, DeltaOp, Vec<Tuple>)] {
        &self.ops
    }

    /// Whether the batch holds no operations at all. (A non-empty batch
    /// may still have an empty *net effect*; see [`net_effect`].)
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total number of tuples across all operations (before netting).
    pub fn num_tuples(&self) -> usize {
        self.ops.iter().map(|(_, _, ts)| ts.len()).sum()
    }
}

/// What one applied batch actually changed, summed over relations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Tuples that were absent from the base and are present after.
    pub inserted: usize,
    /// Tuples that were present in the base and are absent after.
    pub deleted: usize,
}

impl DeltaStats {
    /// Whether the batch had no net effect on the database.
    pub fn is_noop(&self) -> bool {
        self.inserted == 0 && self.deleted == 0
    }

    /// Accumulates another stats record into this one.
    pub fn merge(&mut self, other: DeltaStats) {
        self.inserted += other.inserted;
        self.deleted += other.deleted;
    }
}

/// The net effect of a batch on one relation: tuples to truly insert
/// (absent in the base) and tuples to truly delete (present in the base),
/// after replaying the batch's operations in order.
#[derive(Debug, Clone, Default)]
pub struct RelationDelta {
    /// Name of the stored relation.
    pub relation: String,
    /// Tuples absent from the base relation that the batch makes present.
    pub inserts: Vec<Tuple>,
    /// Tuples present in the base relation that the batch removes.
    pub deletes: Vec<Tuple>,
}

impl RelationDelta {
    /// Whether this relation is left unchanged.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// Normalizes a batch against a base database into per-relation net
/// deltas, validating relation names and tuple arities.
///
/// Replays the operations in order into a desired-presence map per
/// relation, then diffs the final desired state against base membership.
/// Relations with an empty net delta are omitted, so an all-no-op batch
/// returns an empty vector. Tuple order within each delta is the batch's
/// first-touch order, keeping downstream work deterministic.
///
/// # Errors
/// Returns an error if an operation names a relation the database does
/// not store, or carries a tuple whose arity differs from the relation's
/// schema.
pub fn net_effect(db: &Database, batch: &DeltaBatch) -> Result<Vec<RelationDelta>> {
    // Desired presence per relation, with first-touch orders recorded so
    // the output is independent of hash iteration order.
    let mut desired: FxHashMap<&str, FxHashMap<Tuple, bool>> = FxHashMap::default();
    let mut rel_order: Vec<&str> = Vec::new();
    let mut tuple_order: FxHashMap<&str, Vec<Tuple>> = FxHashMap::default();
    for (name, op, tuples) in batch.ops() {
        let stored = db.relation_or_err(name)?;
        let arity = stored.schema().arity();
        if !desired.contains_key(name.as_str()) {
            rel_order.push(name);
        }
        let presence = desired.entry(name).or_default();
        let order = tuple_order.entry(name).or_default();
        for t in tuples {
            if t.arity() != arity {
                return Err(CqapError::SchemaMismatch {
                    expected: format!("arity {arity} for relation {name}"),
                    found: format!("delta tuple of arity {}", t.arity()),
                });
            }
            if !presence.contains_key(t) {
                order.push(t.clone());
            }
            presence.insert(t.clone(), *op == DeltaOp::Insert);
        }
    }
    let mut out = Vec::new();
    for name in rel_order {
        let stored = db.relation_or_err(name)?;
        let presence = &desired[name];
        let mut delta = RelationDelta {
            relation: name.to_string(),
            ..RelationDelta::default()
        };
        for t in &tuple_order[name] {
            let want = presence[t];
            let have = stored.contains(t);
            match (have, want) {
                (false, true) => delta.inserts.push(t.clone()),
                (true, false) => delta.deletes.push(t.clone()),
                _ => {}
            }
        }
        if !delta.is_empty() {
            out.push(delta);
        }
    }
    Ok(out)
}

/// The seam every backend implements to absorb a [`DeltaBatch`] in place.
///
/// Implementations must preserve **rebuild equivalence**: after
/// `apply_delta(batch)`, the backend answers every request exactly like a
/// fresh build over the database with the batch's net effect applied.
pub trait ApplyDelta {
    /// Applies the batch's net effect, returning what actually changed.
    fn apply_delta(&mut self, batch: &DeltaBatch) -> Result<DeltaStats>;
}

/// The reference maintainer: a plain [`Database`] absorbs the net effect
/// directly. Tests use this to produce the post-delta database that
/// incremental backends are compared against via a fresh rebuild.
impl ApplyDelta for Database {
    fn apply_delta(&mut self, batch: &DeltaBatch) -> Result<DeltaStats> {
        let deltas = net_effect(self, batch)?;
        let mut stats = DeltaStats::default();
        for delta in &deltas {
            let rel = self.relation_mut(&delta.relation)?;
            let removed: cqap_common::FxHashSet<Tuple> =
                delta.deletes.iter().cloned().collect();
            stats.deleted += rel.remove_all(&removed);
            for t in &delta.inserts {
                if rel.insert(t.clone())? {
                    stats.inserted += 1;
                }
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_relation::Relation;

    fn base() -> Database {
        let mut db = Database::new();
        db.add_relation(Relation::binary("R", 0, 1, [(1, 2), (2, 3)]))
            .unwrap();
        db.add_relation(Relation::binary("S", 1, 2, [(3, 4)])).unwrap();
        db
    }

    #[test]
    fn net_effect_cancels_delete_then_reinsert() {
        let db = base();
        let batch = DeltaBatch::new()
            .delete("R", vec![Tuple::pair(1, 2)])
            .insert("R", vec![Tuple::pair(1, 2)]);
        assert!(net_effect(&db, &batch).unwrap().is_empty());
    }

    #[test]
    fn net_effect_orders_and_filters_noops() {
        let db = base();
        let batch = DeltaBatch::new()
            .insert("R", vec![Tuple::pair(2, 3)]) // already present: no-op
            .delete("R", vec![Tuple::pair(9, 9)]) // absent: no-op
            .insert("R", vec![Tuple::pair(5, 6)])
            .delete("S", vec![Tuple::pair(3, 4)]);
        let deltas = net_effect(&db, &batch).unwrap();
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].relation, "R");
        assert_eq!(deltas[0].inserts, vec![Tuple::pair(5, 6)]);
        assert!(deltas[0].deletes.is_empty());
        assert_eq!(deltas[1].relation, "S");
        assert_eq!(deltas[1].deletes, vec![Tuple::pair(3, 4)]);
    }

    #[test]
    fn net_effect_last_op_wins() {
        let db = base();
        let batch = DeltaBatch::new()
            .insert("R", vec![Tuple::pair(7, 8)])
            .delete("R", vec![Tuple::pair(7, 8)]);
        assert!(net_effect(&db, &batch).unwrap().is_empty());
        let batch = DeltaBatch::new()
            .delete("R", vec![Tuple::pair(2, 3)])
            .insert("R", vec![Tuple::pair(2, 3)])
            .delete("R", vec![Tuple::pair(2, 3)]);
        let deltas = net_effect(&db, &batch).unwrap();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].deletes, vec![Tuple::pair(2, 3)]);
    }

    #[test]
    fn unknown_relation_and_bad_arity_rejected() {
        let db = base();
        let bad_name = DeltaBatch::new().insert("Q", vec![Tuple::pair(1, 2)]);
        assert!(net_effect(&db, &bad_name).is_err());
        let bad_arity = DeltaBatch::new().insert("R", vec![Tuple::triple(1, 2, 3)]);
        assert!(net_effect(&db, &bad_arity).is_err());
    }

    #[test]
    fn database_apply_matches_manual_edit() {
        let mut db = base();
        let batch = DeltaBatch::new()
            .delete("R", vec![Tuple::pair(1, 2)])
            .insert("R", vec![Tuple::pair(4, 5), Tuple::pair(4, 5)])
            .insert("S", vec![Tuple::pair(3, 4)]); // already there
        let stats = db.apply_delta(&batch).unwrap();
        assert_eq!(stats, DeltaStats { inserted: 1, deleted: 1 });
        let r = db.relation("R").unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.contains(&Tuple::pair(4, 5)));
        assert!(!r.contains(&Tuple::pair(1, 2)));
        assert_eq!(db.relation("S").unwrap().len(), 1);

        let empty = DeltaBatch::new();
        assert!(db.apply_delta(&empty).unwrap().is_noop());
    }
}
